// Package sim executes planned schedules under the runtime semantics of
// §6.1 of the paper: dataflow operators run at priority 1 and index-build
// operators at priority -1; negative-priority operators are stopped when a
// positive-priority operator arrives at their container or the leased
// quantum expires; containers cache inputs on local disk with LRU
// replacement; and actual operator runtimes may differ from the estimates
// the schedule was planned with (the robustness experiment of Fig. 6).
//
// Beyond the paper's fault-free setting, the executor consumes a
// fault.Plan: containers crash or are revoked (in-flight operators are
// killed and re-placed on survivors, partially built index partitions are
// lost, local caches are wiped), transient storage errors are retried with
// capped exponential backoff, and stragglers stretch realized runtimes.
// Fault handling is deterministic — the same plan and schedule always
// yield the identical Result.
package sim

import (
	"math"
	"sort"

	"idxflow/internal/cloud"
	"idxflow/internal/dataflow"
	"idxflow/internal/fault"
	"idxflow/internal/sched"
	"idxflow/internal/telemetry"
)

// timeEps is the shared tolerance for kill-time and boundary comparisons:
// a build ending exactly at its kill point (lease end, preemption point,
// or container failure) counts as completed, and one scheduled exactly at
// the kill point never starts. All realized-time comparisons in this
// package go through this single constant.
const timeEps = 1e-9

// Config parameterizes an execution.
type Config struct {
	Pricing cloud.Pricing
	Spec    cloud.Spec
	// Actual returns the true runtime of an operator in seconds; nil means
	// the estimates are exact (op.Time).
	Actual func(op *dataflow.Operator) float64
	// SizeOf returns the size in MB of a storage path for the input-read
	// and cache model; nil disables read modelling (inputs are then
	// assumed to be folded into operator runtimes).
	SizeOf func(path string) float64
	// Caches holds per-container LRU caches keyed by container index,
	// surviving across executions (the paper's containers cache partitions
	// between dataflows). Nil with SizeOf set means fresh caches.
	Caches map[int]*cloud.LRUCache
	// Faults lists fault events with times relative to this execution's
	// start (the service shifts its absolute fault.Plan via Plan.From);
	// empty means a fault-free execution.
	Faults []fault.Event
	// Backoff is the retry policy for transient storage errors; the zero
	// value means cloud.DefaultBackoff().
	Backoff cloud.Backoff
	// Metrics, when non-nil, receives executor counters and histograms
	// (operator run/wait times, builds killed, cache traffic, quanta
	// charged, faults injected and recovered).
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records an execution span.
	Tracer *telemetry.Tracer
}

// instruments bundles the executor's metric handles; all fields are
// nil-safe no-ops when Config.Metrics is nil.
type instruments struct {
	opRun           *telemetry.HistogramVec
	opWait          *telemetry.Histogram
	buildsKilled    *telemetry.Counter
	buildsCompleted *telemetry.Counter
	quantaCharged   *telemetry.Counter
	fragmentation   *telemetry.Counter
	transferredMB   *telemetry.Counter
	faultsInjected  *telemetry.CounterVec
	recoveries      *telemetry.CounterVec
	wastedQuanta    *telemetry.Counter
}

// PreregisterMetrics creates the executor's metric families in reg so
// they appear in a /metrics scrape before the first execution.
func PreregisterMetrics(reg *telemetry.Registry) { newInstruments(reg) }

func newInstruments(reg *telemetry.Registry) instruments {
	return instruments{
		opRun: reg.HistogramVec("idxflow_op_run_seconds",
			"Realized operator occupancy per execution, by operator kind.",
			telemetry.ExponentialBuckets(0.5, 2, 12), "kind"),
		opWait: reg.Histogram("idxflow_op_wait_seconds",
			"Time an operator's inputs sat ready while its container was busy.",
			telemetry.ExponentialBuckets(0.5, 2, 12)),
		buildsKilled: reg.Counter("idxflow_builds_killed_total",
			"Index-build operators stopped by preemption, quantum expiry or container failure."),
		buildsCompleted: reg.Counter("idxflow_builds_completed_total",
			"Index-build operators that finished inside their idle slot."),
		quantaCharged: reg.Counter("idxflow_quanta_charged_total",
			"VM quanta charged for realized executions (price-weighted)."),
		fragmentation: reg.Counter("idxflow_fragmentation_seconds_total",
			"Paid-but-idle container seconds across executions."),
		transferredMB: reg.Counter("idxflow_sim_transferred_mb_total",
			"MB read from the storage service on container cache misses."),
		faultsInjected: reg.CounterVec("idxflow_faults_injected_total",
			"Fault events that took effect during execution, by fault kind.", "kind"),
		recoveries: reg.CounterVec("idxflow_recoveries_total",
			"Fault effects absorbed: re-placed operators, retried transfers, stragglers ridden out.", "kind"),
		wastedQuanta: reg.Counter("idxflow_wasted_quanta_total",
			"Paid compute discarded because of faults (killed work and dead lease tails), in quanta."),
	}
}

// OpResult is the realized execution of one operator.
type OpResult struct {
	Op        dataflow.OpID
	Container int
	Start     float64
	End       float64
	// Killed reports an index-build operator stopped by preemption,
	// quantum expiry or container failure before completing.
	Killed bool
	// Completed is true for dataflow operators that ran and build
	// operators that finished.
	Completed bool
	// Replaced is true for dataflow operators that were killed on a
	// failed container and re-ran on the recorded (surviving) Container.
	Replaced bool
}

// Result summarizes an execution.
type Result struct {
	Ops map[dataflow.OpID]OpResult
	// Makespan is the realized dataflow execution time td: first dataflow
	// operator start to last dataflow operator finish.
	Makespan float64
	// MoneyQuanta is the realized monetary cost in quanta.
	MoneyQuanta float64
	// Fragmentation is the paid-but-idle time in seconds.
	Fragmentation float64
	// Killed counts build operators stopped before completion.
	Killed int
	// CompletedBuilds lists the build operators that finished.
	CompletedBuilds []dataflow.OpID
	// TransferredMB is the data volume read from the storage service
	// (cache misses) when SizeOf is configured.
	TransferredMB float64
	// FaultsInjected counts fault events that took effect: they killed or
	// delayed work, cut a lease short, or slowed a container. Planned
	// events that hit idle or unleased containers are not counted.
	FaultsInjected int
	// FaultsRecovered counts absorbed fault effects: every re-placed
	// dataflow operator, retried transfer and ridden-out straggler.
	FaultsRecovered int
	// ReplacedOps counts dataflow operators re-placed onto surviving
	// containers after a crash or revocation.
	ReplacedOps int
	// WastedQuanta is paid compute the faults discarded, in quanta:
	// partial runs of killed operators plus lease time past a failure.
	WastedQuanta float64
}

// faultState indexes a resolved fault plan for one execution.
type faultState struct {
	// failAt is the effective failure time per container (earliest crash
	// or revocation); noStart is when the container stops accepting new
	// operators (the revocation notice; equals failAt for crashes).
	failAt  map[int]float64
	noStart map[int]float64
	killEv  map[int]fault.Event
	// slow holds straggler events per container, storage the transient
	// storage errors, both ordered by time.
	slow    map[int][]fault.Event
	storage map[int][]fault.Event
	// consumedStorage marks storage events (by Seq) already applied.
	consumedStorage map[int]bool
	// seen marks event Seqs already counted toward a metric, so an event
	// affecting many operators is injected once.
	seenInjected  map[int]bool
	seenRecovered map[int]bool
	// active lists containers holding at least one planned operator,
	// ascending — the resolution domain for fault.AnyContainer.
	active []int
}

// resolveFaults maps plan events onto the schedule's active containers.
// AnyContainer events rotate deterministically through the active set by
// their sequence number, so a plan generated before the schedule exists
// still lands on real containers.
func resolveFaults(events []fault.Event, s *sched.Schedule) *faultState {
	fs := &faultState{
		failAt: make(map[int]float64), noStart: make(map[int]float64),
		killEv: make(map[int]fault.Event),
		slow:   make(map[int][]fault.Event), storage: make(map[int][]fault.Event),
		consumedStorage: make(map[int]bool),
		seenInjected:    make(map[int]bool), seenRecovered: make(map[int]bool),
	}
	seen := make(map[int]bool)
	for _, a := range s.Assignments() {
		if !seen[a.Container] {
			seen[a.Container] = true
			fs.active = append(fs.active, a.Container)
		}
	}
	sort.Ints(fs.active)
	if len(fs.active) == 0 {
		return fs
	}
	for _, e := range events {
		c := e.Container
		if c == fault.AnyContainer {
			c = fs.active[e.Seq%len(fs.active)]
		}
		switch {
		case e.KillsContainer():
			if prev, dead := fs.failAt[c]; dead && prev <= e.At {
				continue // container is already gone by then
			}
			fs.failAt[c] = e.At
			fs.killEv[c] = e
			fs.noStart[c] = e.At
			if e.Kind == fault.SpotRevocation && e.NoticeSeconds > 0 {
				fs.noStart[c] = e.At - e.NoticeSeconds
			}
		case e.Kind == fault.StorageError:
			ev := e
			ev.Container = c
			fs.storage[c] = append(fs.storage[c], ev)
		case e.Kind == fault.Straggler:
			ev := e
			ev.Container = c
			fs.slow[c] = append(fs.slow[c], ev)
		}
	}
	return fs
}

// deadAt reports whether container c has failed by (or at) time t.
func (fs *faultState) deadAt(c int, t float64) bool {
	if fs == nil {
		return false
	}
	fa, ok := fs.failAt[c]
	return ok && t >= fa-timeEps
}

// slowFactor returns the compound straggler slowdown active on c at t.
func (fs *faultState) slowFactor(c int, t float64, mark func(fault.Event)) float64 {
	if fs == nil {
		return 1
	}
	f := 1.0
	for _, e := range fs.slow[c] {
		if e.At <= t+timeEps {
			f *= e.SlowFactor
			mark(e)
		}
	}
	return f
}

// storageDelay consumes every unconsumed storage-error event on c due by
// t and returns the summed retry backoff.
func (fs *faultState) storageDelay(c int, t float64, b cloud.Backoff, mark func(fault.Event)) float64 {
	if fs == nil {
		return 0
	}
	var d float64
	for _, e := range fs.storage[c] {
		if e.At <= t+timeEps && !fs.consumedStorage[e.Seq] {
			fs.consumedStorage[e.Seq] = true
			d += b.TotalDelay(e.Retries, int64(e.Seq))
			mark(e)
		}
	}
	return d
}

// pendingFlow is one dataflow operator awaiting execution in pass 1.
type pendingFlow struct {
	op   dataflow.OpID
	cont int
	// order is the planned start (or re-placement time), the processing
	// order key; rank breaks ties topologically.
	order    float64
	minStart float64
	rank     int
}

// Execute runs the planned schedule and returns the realized execution.
func Execute(s *sched.Schedule, cfg Config) Result {
	if cfg.Tracer == nil {
		// Disabled unless a -trace flag enabled the package-level tracer.
		cfg.Tracer = telemetry.DefaultTracer()
	}
	span := cfg.Tracer.StartSpan("sim.execute").SetAttr("ops", s.Assigned())
	defer span.End()
	ins := newInstruments(cfg.Metrics)
	actual := cfg.Actual
	if actual == nil {
		actual = func(op *dataflow.Operator) float64 { return op.Time }
	}

	res := Result{Ops: make(map[dataflow.OpID]OpResult, s.Assigned())}
	var fs *faultState
	if len(cfg.Faults) > 0 {
		fs = resolveFaults(cfg.Faults, s)
	}
	markInjected := func(e fault.Event) {
		if !fs.seenInjected[e.Seq] {
			fs.seenInjected[e.Seq] = true
			res.FaultsInjected++
			ins.faultsInjected.With(e.Kind.String()).Inc()
		}
	}
	markRecovered := func(e fault.Event) {
		// Unlike injection, recoveries count per absorbed effect: an event
		// whose failure forces three operators to move is three recoveries.
		fs.seenRecovered[e.Seq] = true
		res.FaultsRecovered++
		ins.recoveries.With(e.Kind.String()).Inc()
	}
	markBoth := func(e fault.Event) { markInjected(e); markRecovered(e) }
	addWasted := func(seconds float64) {
		if seconds > 0 {
			res.WastedQuanta += seconds / cfg.Pricing.QuantumSeconds
		}
	}

	// Planned repair: heal the schedule before execution for every
	// container the plan kills, in failure order. Orphaned dataflow
	// operators move to survivors (a recovery each); orphaned builds are
	// dropped — their partitions re-enter the tuner's beneficial set.
	if fs != nil && len(fs.failAt) > 0 {
		s = s.Clone()
		type failure struct {
			c  int
			at float64
		}
		var failures []failure
		for c, at := range fs.failAt {
			failures = append(failures, failure{c, at})
		}
		sort.Slice(failures, func(i, j int) bool {
			if failures[i].at != failures[j].at {
				return failures[i].at < failures[j].at
			}
			return failures[i].c < failures[j].c
		})
		for _, f := range failures {
			repairs, err := s.Repair(f.c, f.at)
			if err != nil {
				continue // dynamic handling below still covers the failure
			}
			for _, r := range repairs {
				markInjected(fs.killEv[f.c])
				addWasted(r.WastedSeconds)
				if r.Dropped {
					// The build never runs: record it as killed so no
					// operator silently disappears from the result.
					at := math.Min(r.Old.Start, f.at)
					res.Ops[r.Op] = OpResult{Op: r.Op, Container: f.c, Start: at, End: at, Killed: true}
					res.Killed++
					ins.buildsKilled.Inc()
				} else {
					markRecovered(fs.killEv[f.c])
					res.ReplacedOps++
				}
			}
		}
	}
	g := s.Graph

	// Group assignments per container in planned order, and collect the
	// dataflow ops for pass 1.
	perCont := make(map[int][]sched.Assignment)
	var flowOps []sched.Assignment
	for _, a := range s.Assignments() {
		perCont[a.Container] = append(perCont[a.Container], a)
		if !g.Op(a.Op).Optional {
			flowOps = append(flowOps, a)
		}
	}
	conts := make([]int, 0, len(perCont))
	for c := range perCont {
		conts = append(conts, c)
	}
	sort.Ints(conts)
	// Topological ranks break planned-start ties between dependent
	// zero-length ops and order re-placements.
	topo, _ := g.TopoSort()
	rank := make(map[dataflow.OpID]int, len(topo))
	for i, id := range topo {
		rank[id] = i
	}

	caches := cfg.Caches
	if caches == nil && cfg.SizeOf != nil {
		caches = make(map[int]*cloud.LRUCache)
	}

	// Pass 1: dataflow operators. Work-conserving: each starts as soon as
	// its predecessors' data has arrived and the previous dataflow
	// operator on its container has finished. Build operators never delay
	// them (priority -1 yields). Operators on failed containers are
	// killed and re-queued onto survivors; survivors are chosen
	// deterministically (least-loaded, lowest index), opening a fresh
	// container only when every candidate is dead.
	pending := make([]pendingFlow, 0, len(flowOps))
	scheduled := make(map[dataflow.OpID]bool, len(flowOps))
	for _, a := range flowOps {
		pending = append(pending, pendingFlow{op: a.Op, cont: a.Container, order: a.Start, rank: rank[a.Op]})
		scheduled[a.Op] = true
	}
	contClock := make(map[int]float64)
	// arrivals records realized intervals of re-placed ops per container,
	// so pass 2 can preempt builds that planned for that idle time.
	type interval struct{ start, end float64 }
	arrivals := make(map[int][]interval)
	nextFresh := s.NumSlots()
	candidates := append([]int(nil), conts...)

	chooseSurvivor := func(exclude int, t float64) int {
		best, bestClock := -1, math.Inf(1)
		for _, c := range candidates {
			if c == exclude || (fs != nil && fs.deadAt(c, t)) {
				continue
			}
			if fs != nil {
				if ns, ok := fs.noStart[c]; ok && t >= ns-timeEps {
					continue // inside a revocation notice window
				}
			}
			if contClock[c] < bestClock {
				best, bestClock = c, contClock[c]
			}
		}
		if best < 0 {
			best = nextFresh
			nextFresh++
			candidates = append(candidates, best)
		}
		return best
	}

	for len(pending) > 0 {
		// Select the eligible operator with the earliest (order, rank):
		// eligible means every scheduled predecessor has already run.
		pick := -1
		for i, p := range pending {
			ok := true
			for _, e := range g.In(p.op) {
				if _, done := res.Ops[e.From]; scheduled[e.From] && !done {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if pick < 0 || p.order < pending[pick].order-timeEps ||
				(math.Abs(p.order-pending[pick].order) <= timeEps && p.rank < pending[pick].rank) {
				pick = i
			}
		}
		if pick < 0 {
			pick = 0 // unreachable for DAGs; avoid livelock regardless
		}
		p := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)

		op := g.Op(p.op)
		c := p.cont
		ctype := s.ContainerType(c)
		ready := 0.0
		for _, e := range g.In(p.op) {
			pr, done := res.Ops[e.From]
			if !done || !pr.Completed {
				continue
			}
			t := pr.End
			if pr.Container != c {
				t += ctype.Spec.TransferSeconds(e.Size)
			}
			if t > ready {
				ready = t
			}
		}
		start := math.Max(math.Max(contClock[c], ready), p.minStart)
		// A failed (or notice-window) container accepts no new operators:
		// re-place without losing work.
		if fs != nil {
			if ns, ok := fs.noStart[c]; ok && start >= ns-timeEps {
				markBoth(fs.killEv[c])
				res.ReplacedOps++
				nc := chooseSurvivor(c, start)
				pending = append(pending, pendingFlow{
					op: p.op, cont: nc, order: start, minStart: start, rank: p.rank,
				})
				continue
			}
		}
		ins.opWait.Observe(start - ready)
		dur := actual(op) / ctype.SpeedFactor
		if fs != nil {
			dur *= fs.slowFactor(c, start, markBoth)
			dur += fs.storageDelay(c, start, cfg.Backoff, markBoth)
		}
		// Input reads: a cache miss transfers the partition from the
		// storage service before the operator can run (§6.1).
		if cfg.SizeOf != nil && len(op.Reads) > 0 {
			lru := caches[c]
			if lru == nil {
				lru = cloud.NewLRUCache(ctype.Spec.DiskMB).Instrument(cfg.Metrics)
				caches[c] = lru
			}
			for _, path := range op.Reads {
				size := cfg.SizeOf(path)
				if size <= 0 {
					continue
				}
				if !lru.Get(path) {
					dur += ctype.Spec.TransferSeconds(size)
					res.TransferredMB += size
					lru.Put(path, size)
				}
			}
		}
		end := start + dur
		// In-flight at the container's failure time: the work since start
		// is lost; the operator restarts from scratch on a survivor.
		if fs != nil {
			if fa, dead := fs.failAt[c]; dead && end > fa+timeEps {
				markBoth(fs.killEv[c])
				addWasted(fa - start)
				res.ReplacedOps++
				contClock[c] = fa
				nc := chooseSurvivor(c, fa)
				pending = append(pending, pendingFlow{
					op: p.op, cont: nc, order: fa, minStart: fa, rank: p.rank,
				})
				continue
			}
		}
		ins.opRun.With(op.Kind.String()).Observe(dur)
		r := OpResult{Op: p.op, Container: c, Start: start, End: end, Completed: true}
		if a, planned := s.Assignment(p.op); !planned || a.Container != c {
			r.Replaced = true
			arrivals[c] = append(arrivals[c], interval{start, end})
		}
		res.Ops[p.op] = r
		contClock[c] = end
	}

	// Realized lease per container: whole quanta covering the last
	// dataflow activity (idle containers are deleted when their current
	// quantum expires, §3). A container holding only build operators is a
	// dedicated build container (the delayed-building extension): its
	// lease is the planned quanta the service deliberately paid for, and
	// builds running long are still cut at that boundary. A failed
	// container is charged through the quantum containing the failure;
	// the unusable remainder of that lease is fault waste.
	leaseEnd := make(map[int]float64)
	buildKill := make(map[int]float64)
	for _, c := range conts {
		var last float64
		anyFlowOp := false
		for _, a := range perCont[c] {
			if !g.Op(a.Op).Optional {
				anyFlowOp = true
				if r := res.Ops[a.Op]; r.Container == c && r.End > last {
					last = r.End
				}
			}
		}
		if fs != nil && anyFlowOp {
			// Killed partial runs occupy the container up to the failure.
			if fa, dead := fs.failAt[c]; dead && contClock[c] == fa && fa > last {
				last = fa
			}
		}
		for _, iv := range arrivals[c] {
			if iv.end > last {
				last = iv.end
			}
		}
		if !anyFlowOp && len(arrivals[c]) == 0 {
			for _, a := range perCont[c] {
				if a.End > last {
					last = a.End
				}
			}
		}
		lease := float64(cfg.Pricing.Quanta(last)) * cfg.Pricing.QuantumSeconds
		buildKill[c] = lease
		if fs != nil {
			if fa, dead := fs.failAt[c]; dead && fa < lease-timeEps {
				markInjected(fs.killEv[c])
				// Pay through the failure's quantum; its tail is waste.
				charged := float64(cfg.Pricing.Quanta(fa)) * cfg.Pricing.QuantumSeconds
				if charged > lease {
					charged = lease
				}
				addWasted(charged - fa)
				lease = charged
				buildKill[c] = math.Min(fa, lease)
			}
		}
		leaseEnd[c] = lease
	}
	for c := range arrivals {
		if _, known := leaseEnd[c]; !known {
			// A fresh container opened by recovery: leased like any other.
			var last float64
			for _, iv := range arrivals[c] {
				if iv.end > last {
					last = iv.end
				}
			}
			leaseEnd[c] = float64(cfg.Pricing.Quanta(last)) * cfg.Pricing.QuantumSeconds
			buildKill[c] = leaseEnd[c]
		}
	}

	// Pass 2: build operators run in the realized gaps, in planned order,
	// stopped by the next dataflow operator's realized start, a re-placed
	// arrival, the container's failure, or the lease end.
	for _, c := range conts {
		as := perCont[c]
		// Realized start of each resident dataflow op on this container,
		// in planned order.
		type flowPoint struct {
			idx   int // index in as
			start float64
		}
		var points []flowPoint
		for i, a := range as {
			if !g.Op(a.Op).Optional {
				if r := res.Ops[a.Op]; r.Container == c {
					points = append(points, flowPoint{idx: i, start: r.Start})
				}
			}
		}
		clock := 0.0
		pi := 0
		for i, a := range as {
			op := g.Op(a.Op)
			if !op.Optional {
				if r := res.Ops[a.Op]; r.Container == c && r.End > clock {
					clock = r.End
				}
				if pi < len(points) && points[pi].idx == i {
					pi++
				}
				continue
			}
			// Kill time: the next resident dataflow op's realized start,
			// a re-placed arrival, the container failure, else the lease
			// end.
			kill := buildKill[c]
			for j := pi; j < len(points); j++ {
				if points[j].idx > i {
					if points[j].start < kill {
						kill = points[j].start
					}
					break
				}
			}
			for _, iv := range arrivals[c] {
				if iv.end > clock+timeEps && iv.start < kill {
					kill = math.Max(iv.start, clock)
				}
			}
			start := clock
			faultKill := false
			if fs != nil {
				if ns, ok := fs.noStart[c]; ok && math.Min(ns, kill) < kill {
					kill = ns // no new work after the failure notice
				}
				if fa, dead := fs.failAt[c]; dead && fa <= kill+timeEps {
					faultKill = true
				}
			}
			dur := actual(op) / s.ContainerType(c).SpeedFactor
			if fs != nil {
				dur *= fs.slowFactor(c, start, markBoth)
			}
			end := start + dur
			r := OpResult{Op: a.Op, Container: c, Start: start}
			if start >= kill-timeEps {
				r.End = start // preempted before it could run at all
				r.Killed = true
				res.Killed++
			} else if end > kill+timeEps {
				r.End = kill // stopped at preemption, expiry or failure
				r.Killed = true
				res.Killed++
				if faultKill {
					markInjected(fs.killEv[c])
					addWasted(r.End - r.Start)
				}
			} else {
				r.End = end
				r.Completed = true
				res.CompletedBuilds = append(res.CompletedBuilds, a.Op)
			}
			if r.Killed {
				ins.buildsKilled.Inc()
			} else {
				ins.buildsCompleted.Inc()
			}
			ins.opRun.With(op.Kind.String()).Observe(r.End - r.Start)
			res.Ops[a.Op] = r
			clock = r.End
		}
	}
	sort.Slice(res.CompletedBuilds, func(i, j int) bool {
		return res.CompletedBuilds[i] < res.CompletedBuilds[j]
	})

	// A failed container loses its local disk cache.
	if fs != nil && caches != nil {
		for c := range fs.failAt {
			delete(caches, c)
		}
	}

	// Aggregate metrics, iterating deterministically so a seeded faulty
	// run reproduces byte-identical output.
	ids := make([]dataflow.OpID, 0, len(res.Ops))
	for id := range res.Ops {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	first, last := math.Inf(1), 0.0
	anyFlow := false
	var busy float64
	for _, id := range ids {
		r := res.Ops[id]
		busy += r.End - r.Start
		if g.Op(id).Optional {
			continue
		}
		anyFlow = true
		if r.Start < first {
			first = r.Start
		}
		if r.End > last {
			last = r.End
		}
	}
	if anyFlow {
		res.Makespan = last - first
	}
	leasedConts := make([]int, 0, len(leaseEnd))
	for c := range leaseEnd {
		leasedConts = append(leasedConts, c)
	}
	sort.Ints(leasedConts)
	var leased float64
	for _, c := range leasedConts {
		leased += leaseEnd[c]
		w := 1.0
		if cfg.Pricing.VMPerQuantum > 0 {
			if t := s.ContainerType(c); t.PricePerQuantum > 0 {
				w = t.PricePerQuantum / cfg.Pricing.VMPerQuantum
			}
		}
		res.MoneyQuanta += float64(cfg.Pricing.Quanta(leaseEnd[c])) * w
	}
	res.Fragmentation = leased - busy

	ins.quantaCharged.Add(res.MoneyQuanta)
	ins.fragmentation.Add(res.Fragmentation)
	ins.transferredMB.Add(res.TransferredMB)
	ins.wastedQuanta.Add(res.WastedQuanta)
	span.SetAttr("makespan_seconds", res.Makespan).
		SetAttr("money_quanta", res.MoneyQuanta).
		SetAttr("builds_killed", res.Killed).
		SetAttr("builds_completed", len(res.CompletedBuilds))
	if res.FaultsInjected > 0 {
		span.SetAttr("faults_injected", res.FaultsInjected).
			SetAttr("faults_recovered", res.FaultsRecovered).
			SetAttr("ops_replaced", res.ReplacedOps).
			SetAttr("wasted_quanta", res.WastedQuanta)
	}
	return res
}
