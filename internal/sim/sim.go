// Package sim executes planned schedules under the runtime semantics of
// §6.1 of the paper: dataflow operators run at priority 1 and index-build
// operators at priority -1; negative-priority operators are stopped when a
// positive-priority operator arrives at their container or the leased
// quantum expires; containers cache inputs on local disk with LRU
// replacement; and actual operator runtimes may differ from the estimates
// the schedule was planned with (the robustness experiment of Fig. 6).
//
// Beyond the paper's fault-free setting, the executor consumes a
// fault.Plan: containers crash or are revoked (in-flight operators are
// killed and re-placed on survivors, partially built index partitions are
// lost, local caches are wiped), transient storage errors are retried with
// capped exponential backoff, and stragglers stretch realized runtimes.
// Fault handling is deterministic — the same plan and schedule always
// yield the identical Result.
//
// The executor is a discrete-event core built for replay throughput: the
// online tuning loop and the experiments issue thousands of Execute calls
// per run, so the ready set is an indexed min-heap over (planned order,
// topological rank) fed by per-operator unmet-predecessor counts, fault
// plans are pre-resolved into per-container time-sorted timelines advanced
// by binary search, and all per-replay working state lives in a pooled
// scratch arena so steady-state replay allocates little beyond the Result
// it returns.
package sim

import (
	"context"
	"math"
	"sort"
	"sync"

	"idxflow/internal/cloud"
	"idxflow/internal/dataflow"
	"idxflow/internal/fault"
	"idxflow/internal/provenance"
	"idxflow/internal/sched"
	"idxflow/internal/telemetry"
)

// timeEps is the shared tolerance for kill-time and boundary comparisons:
// a build ending exactly at its kill point (lease end, preemption point,
// or container failure) counts as completed, and one scheduled exactly at
// the kill point never starts. All realized-time comparisons in this
// package go through this single constant.
const timeEps = 1e-9

// Config parameterizes an execution.
type Config struct {
	Pricing cloud.Pricing
	Spec    cloud.Spec
	// Actual returns the true runtime of an operator in seconds; nil means
	// the estimates are exact (op.Time).
	Actual func(op *dataflow.Operator) float64
	// SizeOf returns the size in MB of a storage path for the input-read
	// and cache model; nil disables read modelling (inputs are then
	// assumed to be folded into operator runtimes).
	SizeOf func(path string) float64
	// Caches holds per-container LRU caches keyed by container index,
	// surviving across executions (the paper's containers cache partitions
	// between dataflows). Nil with SizeOf set means fresh caches.
	Caches map[int]*cloud.LRUCache
	// Faults lists fault events with times relative to this execution's
	// start (the service shifts its absolute fault.Plan via Plan.From);
	// empty means a fault-free execution.
	Faults []fault.Event
	// Backoff is the retry policy for transient storage errors; the zero
	// value means cloud.DefaultBackoff().
	Backoff cloud.Backoff
	// Metrics, when non-nil, receives executor counters and histograms
	// (operator run/wait times, builds killed, cache traffic, quanta
	// charged, faults injected and recovered).
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records an execution span.
	Tracer *telemetry.Tracer
	// Provenance, when active, receives flight-recorder events for builds
	// killed mid-execution and faults injected/recovered. A nil or
	// disabled recorder costs one atomic load per Execute.
	Provenance *provenance.Recorder
	// FlowID attributes this execution's provenance events to a dataflow.
	FlowID provenance.FlowID
	// ProvenanceT0 is the absolute service time this execution starts at;
	// event times are ProvenanceT0 plus execution-relative seconds, so the
	// log shares the service clock with every other layer.
	ProvenanceT0 float64
	// Ctx, when non-nil, lets the caller cancel the replay: the event loops
	// poll it and a cancelled execution returns Result{Cancelled: true}
	// with no other fields populated, so a drained admission stops cleanly
	// instead of running to completion. Nil means never cancelled.
	Ctx context.Context
}

// instruments bundles the executor's metric handles; all fields are
// nil-safe no-ops when Config.Metrics is nil.
type instruments struct {
	opRun           *telemetry.HistogramVec
	opWait          *telemetry.Histogram
	buildsKilled    *telemetry.Counter
	buildsCompleted *telemetry.Counter
	quantaCharged   *telemetry.Counter
	fragmentation   *telemetry.Counter
	transferredMB   *telemetry.Counter
	faultsInjected  *telemetry.CounterVec
	recoveries      *telemetry.CounterVec
	wastedQuanta    *telemetry.Counter
}

// PreregisterMetrics creates the executor's metric families in reg so
// they appear in a /metrics scrape before the first execution.
func PreregisterMetrics(reg *telemetry.Registry) { getInstruments(reg) }

// instrumentsKey memoizes the executor's handle bundle per registry.
type instrumentsKey struct{}

// nilInstruments backs executions without a registry: every handle is a
// nil-receiver no-op, so the hot path needs no nil checks.
var nilInstruments = newInstruments(nil)

// getInstruments resolves the executor's metric handles once per registry
// (telemetry.Registry.Memo), instead of re-running ten family lookups on
// every Execute call.
func getInstruments(reg *telemetry.Registry) *instruments {
	if reg == nil {
		return &nilInstruments
	}
	return reg.Memo(instrumentsKey{}, func() any {
		ins := newInstruments(reg)
		return &ins
	}).(*instruments)
}

func newInstruments(reg *telemetry.Registry) instruments {
	return instruments{
		opRun: reg.HistogramVec("idxflow_op_run_seconds",
			"Realized operator occupancy per execution, by operator kind.",
			telemetry.ExponentialBuckets(0.5, 2, 12), "kind"),
		opWait: reg.Histogram("idxflow_op_wait_seconds",
			"Time an operator's inputs sat ready while its container was busy.",
			telemetry.ExponentialBuckets(0.5, 2, 12)),
		buildsKilled: reg.Counter("idxflow_builds_killed_total",
			"Index-build operators stopped by preemption, quantum expiry or container failure."),
		buildsCompleted: reg.Counter("idxflow_builds_completed_total",
			"Index-build operators that finished inside their idle slot."),
		quantaCharged: reg.Counter("idxflow_quanta_charged_total",
			"VM quanta charged for realized executions (price-weighted)."),
		fragmentation: reg.Counter("idxflow_fragmentation_seconds_total",
			"Paid-but-idle container seconds across executions."),
		transferredMB: reg.Counter("idxflow_sim_transferred_mb_total",
			"MB read from the storage service on container cache misses."),
		faultsInjected: reg.CounterVec("idxflow_faults_injected_total",
			"Fault events that took effect during execution, by fault kind.", "kind"),
		recoveries: reg.CounterVec("idxflow_recoveries_total",
			"Fault effects absorbed: re-placed operators, retried transfers, stragglers ridden out.", "kind"),
		wastedQuanta: reg.Counter("idxflow_wasted_quanta_total",
			"Paid compute discarded because of faults (killed work and dead lease tails), in quanta."),
	}
}

// OpResult is the realized execution of one operator.
type OpResult struct {
	Op        dataflow.OpID
	Container int
	Start     float64
	End       float64
	// Killed reports an index-build operator stopped by preemption,
	// quantum expiry or container failure before completing.
	Killed bool
	// Completed is true for dataflow operators that ran and build
	// operators that finished.
	Completed bool
	// Replaced is true for dataflow operators that were killed on a
	// failed container and re-ran on the recorded (surviving) Container.
	Replaced bool
}

// Result summarizes an execution.
type Result struct {
	Ops map[dataflow.OpID]OpResult
	// Makespan is the realized dataflow execution time td: first dataflow
	// operator start to last dataflow operator finish.
	Makespan float64
	// MoneyQuanta is the realized monetary cost in quanta.
	MoneyQuanta float64
	// Fragmentation is the paid-but-idle time in seconds.
	Fragmentation float64
	// Killed counts build operators stopped before completion.
	Killed int
	// CompletedBuilds lists the build operators that finished.
	CompletedBuilds []dataflow.OpID
	// TransferredMB is the data volume read from the storage service
	// (cache misses) when SizeOf is configured.
	TransferredMB float64
	// FaultsInjected counts fault events that took effect: they killed or
	// delayed work, cut a lease short, or slowed a container. Planned
	// events that hit idle or unleased containers are not counted.
	FaultsInjected int
	// FaultedContainers is the sorted set of containers the resolved fault
	// plan touches — kills, stragglers and storage errors alike. It is
	// derived from the plan, not from which events took effect at runtime,
	// so it is a deterministic (if conservative) bound on the containers
	// whose warm-start books a tuner must invalidate.
	FaultedContainers []int
	// FaultsRecovered counts absorbed fault effects: every re-placed
	// dataflow operator, retried transfer and ridden-out straggler.
	FaultsRecovered int
	// ReplacedOps counts dataflow operators re-placed onto surviving
	// containers after a crash or revocation.
	ReplacedOps int
	// WastedQuanta is paid compute the faults discarded, in quanta:
	// partial runs of killed operators plus lease time past a failure.
	WastedQuanta float64
	// Cancelled reports that Config.Ctx was cancelled mid-replay. A
	// cancelled result carries no other data: the execution never happened
	// as far as accounting is concerned.
	Cancelled bool
}

// sortedFaultSet flattens a container set to the sorted slice Result
// carries.
func sortedFaultSet(set map[int]bool) []int {
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// touchedContainers lists every container the resolved plan faults —
// kills, stragglers and storage errors. Derived from the plan rather than
// from runtime injection marking so the event core and the golden
// reference executor, which discover injections at different evaluation
// points, report the identical set.
func (fs *faultState) touchedContainers() []int {
	if fs == nil {
		return nil
	}
	set := make(map[int]bool, len(fs.failAt)+len(fs.slow)+len(fs.storage))
	for c := range fs.failAt {
		set[c] = true
	}
	for c := range fs.slow {
		set[c] = true
	}
	for c := range fs.storage {
		set[c] = true
	}
	return sortedFaultSet(set)
}

// slowTimeline is one container's straggler events, At-ascending, with a
// cursor over the already-active prefix and the running compound slowdown
// of that prefix. Query times are non-decreasing within each execution
// pass, so advancing the cursor by binary search replaces the seed's full
// per-call rescan; the product is folded in timeline order, so it is the
// same float expression the rescan computed.
type slowTimeline struct {
	events []fault.Event
	cur    int
	prod   float64
}

// advance activates every event due by t, folding it into the running
// product and reporting it to inject (first-activation only — injection
// counting dedups by Seq anyway).
func (tl *slowTimeline) advance(t float64, inject func(fault.Event)) {
	if tl.cur >= len(tl.events) || tl.events[tl.cur].At > t+timeEps {
		return
	}
	hi := tl.cur + sort.Search(len(tl.events)-tl.cur, func(i int) bool {
		return tl.events[tl.cur+i].At > t+timeEps
	})
	for ; tl.cur < hi; tl.cur++ {
		e := tl.events[tl.cur]
		tl.prod *= e.SlowFactor
		inject(e)
	}
}

// storageTimeline is one container's transient storage errors,
// At-ascending, with a cursor over the prefix already due.
type storageTimeline struct {
	events []fault.Event
	cur    int
}

// faultState indexes a resolved fault plan for one execution.
type faultState struct {
	// failAt is the effective failure time per container (earliest crash
	// or revocation); noStart is when the container stops accepting new
	// operators (the revocation notice; equals failAt for crashes).
	failAt  map[int]float64
	noStart map[int]float64
	killEv  map[int]fault.Event
	// slow holds straggler timelines per container, storage the transient
	// storage errors, both time-sorted and cursor-advanced.
	slow    map[int]*slowTimeline
	storage map[int]*storageTimeline
	// consumedStorage marks storage events (by Seq) already applied.
	consumedStorage map[int]bool
	// seenInjected marks event Seqs already counted toward the injection
	// metric, so an event affecting many operators is injected once.
	seenInjected map[int]bool
	// active lists containers holding at least one planned operator,
	// ascending — the resolution domain for fault.AnyContainer.
	active []int
}

// resolveFaults maps plan events onto the schedule's active containers.
// AnyContainer events rotate deterministically through the active set by
// their sequence number, so a plan generated before the schedule exists
// still lands on real containers.
func resolveFaults(events []fault.Event, s *sched.Schedule) *faultState {
	fs := &faultState{
		failAt: make(map[int]float64), noStart: make(map[int]float64),
		killEv: make(map[int]fault.Event),
		slow:   make(map[int]*slowTimeline), storage: make(map[int]*storageTimeline),
		consumedStorage: make(map[int]bool),
		seenInjected:    make(map[int]bool),
	}
	for c := 0; c < s.NumSlots(); c++ {
		if s.ContainerOps(c) > 0 {
			fs.active = append(fs.active, c)
		}
	}
	if len(fs.active) == 0 {
		return fs
	}
	for _, e := range events {
		c := e.Container
		if c == fault.AnyContainer {
			c = fs.active[e.Seq%len(fs.active)]
		}
		switch {
		case e.KillsContainer():
			if prev, dead := fs.failAt[c]; dead && prev <= e.At {
				continue // container is already gone by then
			}
			fs.failAt[c] = e.At
			// Store the resolved copy: downstream consumers (metrics,
			// provenance events) see the concrete container, not
			// AnyContainer.
			ev := e
			ev.Container = c
			fs.killEv[c] = ev
			fs.noStart[c] = e.At
			if e.Kind == fault.SpotRevocation && e.NoticeSeconds > 0 {
				fs.noStart[c] = e.At - e.NoticeSeconds
			}
		case e.Kind == fault.StorageError:
			ev := e
			ev.Container = c
			tl := fs.storage[c]
			if tl == nil {
				tl = &storageTimeline{}
				fs.storage[c] = tl
			}
			tl.events = append(tl.events, ev)
		case e.Kind == fault.Straggler:
			ev := e
			ev.Container = c
			tl := fs.slow[c]
			if tl == nil {
				tl = &slowTimeline{prod: 1}
				fs.slow[c] = tl
			}
			tl.events = append(tl.events, ev)
		}
	}
	// Plans are generated At-sorted, making the stable sort the identity;
	// it only reorders hand-built unsorted configs.
	for _, tl := range fs.slow {
		ev := tl.events
		sort.SliceStable(ev, func(i, j int) bool { return ev[i].At < ev[j].At })
	}
	for _, tl := range fs.storage {
		ev := tl.events
		sort.SliceStable(ev, func(i, j int) bool { return ev[i].At < ev[j].At })
	}
	return fs
}

// deadAt reports whether container c has failed by (or at) time t.
func (fs *faultState) deadAt(c int, t float64) bool {
	if fs == nil {
		return false
	}
	fa, ok := fs.failAt[c]
	return ok && t >= fa-timeEps
}

// slowFactor returns the compound straggler slowdown active on c at t.
// Every active event counts as an absorbed effect on every call (the
// operator rode it out), reported in bulk through recovered.
func (fs *faultState) slowFactor(c int, t float64, inject func(fault.Event), recovered func(int)) float64 {
	if fs == nil {
		return 1
	}
	tl := fs.slow[c]
	if tl == nil {
		return 1
	}
	tl.advance(t, inject)
	if tl.cur > 0 {
		recovered(tl.cur)
	}
	return tl.prod
}

// resetSlow rewinds c's straggler cursor; pass 2 restarts each
// container's clock at zero, so its queries are non-decreasing again.
func (fs *faultState) resetSlow(c int) {
	if tl := fs.slow[c]; tl != nil {
		tl.cur, tl.prod = 0, 1
	}
}

// storageDelay consumes every unconsumed storage-error event on c due by
// t and returns the summed retry backoff.
func (fs *faultState) storageDelay(c int, t float64, b cloud.Backoff, mark func(fault.Event)) float64 {
	if fs == nil {
		return 0
	}
	tl := fs.storage[c]
	if tl == nil || tl.cur >= len(tl.events) || tl.events[tl.cur].At > t+timeEps {
		return 0
	}
	hi := tl.cur + sort.Search(len(tl.events)-tl.cur, func(i int) bool {
		return tl.events[tl.cur+i].At > t+timeEps
	})
	var d float64
	for ; tl.cur < hi; tl.cur++ {
		e := tl.events[tl.cur]
		if fs.consumedStorage[e.Seq] {
			continue
		}
		fs.consumedStorage[e.Seq] = true
		d += b.TotalDelay(e.Retries, int64(e.Seq))
		mark(e)
	}
	return d
}

// pendingFlow is one dataflow operator awaiting execution in pass 1.
type pendingFlow struct {
	op   dataflow.OpID
	cont int
	// order is the planned start (or re-placement time), the processing
	// order key; rank breaks ties topologically.
	order    float64
	minStart float64
	rank     int
}

// pfLess is the ready-heap order: strict (order, rank). The timeEps
// tie-break the seed semantics require is applied at pop time by
// heapPopCluster, not here.
func pfLess(a, b pendingFlow) bool {
	if a.order != b.order {
		return a.order < b.order
	}
	return a.rank < b.rank
}

func heapPush(h []pendingFlow, p pendingFlow) []pendingFlow {
	h = append(h, p)
	i := len(h) - 1
	for i > 0 {
		par := (i - 1) / 2
		if !pfLess(h[i], h[par]) {
			break
		}
		h[i], h[par] = h[par], h[i]
		i = par
	}
	return h
}

// heapFix restores the heap property around index i after a removal
// replaced h[i] with the former last element.
func heapFix(h []pendingFlow, i int) {
	for i > 0 {
		par := (i - 1) / 2
		if !pfLess(h[i], h[par]) {
			break
		}
		h[i], h[par] = h[par], h[i]
		i = par
	}
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(h) && pfLess(h[l], h[m]) {
			m = l
		}
		if r < len(h) && pfLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// heapPopCluster removes and returns the operator the seed selection
// picks: the strict (order, rank) minimum opens an eps window, and the
// smallest topological rank among operators with order within timeEps of
// that minimum wins (ranks are unique per op, so the pick is
// deterministic). The window members all sit on root paths of the heap,
// so a pruned descent visits only the — almost always singleton —
// cluster. stack is caller-owned scratch, returned for capacity reuse.
func heapPopCluster(h []pendingFlow, stack []int) ([]pendingFlow, pendingFlow, []int) {
	best := 0
	if len(h) > 1 {
		limit := h[0].order + timeEps
		stack = stack[:0]
		if h[1].order <= limit {
			stack = append(stack, 1)
		}
		if len(h) > 2 && h[2].order <= limit {
			stack = append(stack, 2)
		}
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if h[i].rank < h[best].rank {
				best = i
			}
			if l := 2*i + 1; l < len(h) && h[l].order <= limit {
				stack = append(stack, l)
			}
			if r := 2*i + 2; r < len(h) && h[r].order <= limit {
				stack = append(stack, r)
			}
		}
	}
	p := h[best]
	last := len(h) - 1
	h[best] = h[last]
	h = h[:last]
	if best < len(h) {
		heapFix(h, best)
	}
	return h, p, stack
}

// Pass-1 operator states for the eligibility bookkeeping.
const (
	stNone    uint8 = iota // not a scheduled dataflow operator
	stWaiting              // scheduled, has unmet scheduled predecessors
	stQueued               // in the ready heap (or force-queued)
	stDone                 // completed, result recorded
)

// flowPoint is the realized start of a resident dataflow op, by position
// in the container's planned order (pass 2's preemption points).
type flowPoint struct {
	idx   int
	start float64
}

// contGroup is one container's contiguous range in the sorted assignment
// slice.
type contGroup struct{ c, lo, hi int }

// scratch is the per-replay working state of Execute, recycled through a
// sync.Pool across the thousands of replays the experiments and the
// tuning loop issue. Per-operator slices are indexed by the dense OpID,
// per-container slices by container index (including recovery-opened
// fresh containers). Nothing in scratch escapes into the returned Result.
type scratch struct {
	assigns   []sched.Assignment
	groups    []contGroup
	kahn      []int32
	fifo      []dataflow.OpID
	rank      []int32
	indeg     []int32
	state     []uint8
	waitCont  []int32
	waitOrder []float64
	heap      []pendingFlow
	stack     []int
	contClock []float64
	cands     []int
	leaseEnd  []float64
	buildKill []float64
	leased    []bool
	points    []flowPoint
	ids       []dataflow.OpID
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// resized returns s with length n and every element zeroed, reusing the
// backing array when it is large enough.
func resized[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Execute runs the planned schedule and returns the realized execution.
func Execute(s *sched.Schedule, cfg Config) Result {
	if cfg.Tracer == nil {
		// Disabled unless a -trace flag enabled the package-level tracer.
		cfg.Tracer = telemetry.DefaultTracer()
	}
	span := cfg.Tracer.StartSpan("sim.execute").SetAttr("ops", s.Assigned())
	if cfg.FlowID != 0 {
		span.SetAttr("flow_id", uint64(cfg.FlowID))
	}
	defer span.End()
	var done <-chan struct{}
	if cfg.Ctx != nil {
		done = cfg.Ctx.Done()
	}
	cancelled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	if cancelled() {
		return Result{Cancelled: true}
	}
	ins := getInstruments(cfg.Metrics)
	actual := cfg.Actual
	if actual == nil {
		actual = func(op *dataflow.Operator) float64 { return op.Time }
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	// Label-value handles resolved lazily once per Execute (not cached on
	// the shared instruments bundle: concurrent replays would race, and
	// eager resolution would create series no replay touched).
	var opRunByKind [int(dataflow.KindBuildIndex) + 1]*telemetry.Histogram
	observeRun := func(k dataflow.Kind, v float64) {
		if k >= 0 && int(k) < len(opRunByKind) {
			h := opRunByKind[k]
			if h == nil {
				h = ins.opRun.With(k.String())
				opRunByKind[k] = h
			}
			h.Observe(v)
			return
		}
		ins.opRun.With(k.String()).Observe(v)
	}
	var injByKind, recByKind [int(fault.Straggler) + 1]*telemetry.Counter
	injCounter := func(k fault.Kind) *telemetry.Counter {
		if k >= 0 && int(k) < len(injByKind) {
			if injByKind[k] == nil {
				injByKind[k] = ins.faultsInjected.With(k.String())
			}
			return injByKind[k]
		}
		return ins.faultsInjected.With(k.String())
	}
	recCounter := func(k fault.Kind) *telemetry.Counter {
		if k >= 0 && int(k) < len(recByKind) {
			if recByKind[k] == nil {
				recByKind[k] = ins.recoveries.With(k.String())
			}
			return recByKind[k]
		}
		return ins.recoveries.With(k.String())
	}

	res := Result{Ops: make(map[dataflow.OpID]OpResult, s.Assigned())}
	var fs *faultState
	if len(cfg.Faults) > 0 {
		fs = resolveFaults(cfg.Faults, s)
		res.FaultedContainers = fs.touchedContainers()
	}
	// recording is resolved once per Execute: a disabled recorder costs this
	// single atomic load and the hot paths never construct events.
	recording := cfg.Provenance.Active()
	markInjected := func(e fault.Event) {
		if !fs.seenInjected[e.Seq] {
			fs.seenInjected[e.Seq] = true
			res.FaultsInjected++
			injCounter(e.Kind).Inc()
			if recording {
				cfg.Provenance.Append(provenance.Event{
					Kind: provenance.KindFaultInjected, Flow: cfg.FlowID,
					T: cfg.ProvenanceT0 + e.At, Name: e.Kind.String(),
					Container: e.Container, Count: 1,
				})
			}
		}
	}
	markRecovered := func(e fault.Event) {
		// Unlike injection, recoveries count per absorbed effect: an event
		// whose failure forces three operators to move is three recoveries.
		res.FaultsRecovered++
		recCounter(e.Kind).Inc()
		if recording {
			cfg.Provenance.Append(provenance.Event{
				Kind: provenance.KindFaultRecovered, Flow: cfg.FlowID,
				T: cfg.ProvenanceT0 + e.At, Name: e.Kind.String(),
				Container: e.Container, Count: 1,
			})
		}
	}
	markBoth := func(e fault.Event) { markInjected(e); markRecovered(e) }
	recoveredSlow := func(n int) {
		res.FaultsRecovered += n
		recCounter(fault.Straggler).Add(float64(n))
		if recording {
			cfg.Provenance.Append(provenance.Event{
				Kind: provenance.KindFaultRecovered, Flow: cfg.FlowID,
				T: cfg.ProvenanceT0, Name: fault.Straggler.String(), Count: n,
			})
		}
	}
	addWasted := func(seconds float64) {
		if seconds > 0 {
			res.WastedQuanta += seconds / cfg.Pricing.QuantumSeconds
		}
	}

	// Planned repair: heal the schedule before execution for every
	// container the plan kills, in failure order. Orphaned dataflow
	// operators move to survivors (a recovery each); orphaned builds are
	// dropped — their partitions re-enter the tuner's beneficial set.
	if fs != nil && len(fs.failAt) > 0 {
		s = s.Clone()
		type failure struct {
			c  int
			at float64
		}
		var failures []failure
		for c, at := range fs.failAt {
			failures = append(failures, failure{c, at})
		}
		sort.Slice(failures, func(i, j int) bool {
			if failures[i].at != failures[j].at {
				return failures[i].at < failures[j].at
			}
			return failures[i].c < failures[j].c
		})
		for _, f := range failures {
			repairs, err := s.Repair(f.c, f.at)
			if err != nil {
				continue // dynamic handling below still covers the failure
			}
			for _, r := range repairs {
				markInjected(fs.killEv[f.c])
				addWasted(r.WastedSeconds)
				if r.Dropped {
					// The build never runs: record it as killed so no
					// operator silently disappears from the result.
					at := math.Min(r.Old.Start, f.at)
					res.Ops[r.Op] = OpResult{Op: r.Op, Container: f.c, Start: at, End: at, Killed: true}
					res.Killed++
					ins.buildsKilled.Inc()
					if recording {
						cfg.Provenance.Append(provenance.Event{
							Kind: provenance.KindBuildKilled, Flow: cfg.FlowID,
							T: cfg.ProvenanceT0 + at, Op: s.Graph.Op(r.Op).Name,
							Container: f.c, Start: at, End: at, Reason: "fault",
						})
					}
				} else {
					markRecovered(fs.killEv[f.c])
					res.ReplacedOps++
				}
			}
		}
	}
	g := s.Graph

	// One sorted assignment pass: contiguous ranges of the
	// (container, start, op)-sorted slice are the per-container planned
	// orders the seed kept in a map of slices.
	sc.assigns = s.AssignmentsAppend(sc.assigns)
	assigns := sc.assigns
	sc.groups = sc.groups[:0]
	for lo := 0; lo < len(assigns); {
		c := assigns[lo].Container
		hi := lo + 1
		for hi < len(assigns) && assigns[hi].Container == c {
			hi++
		}
		sc.groups = append(sc.groups, contGroup{c: c, lo: lo, hi: hi})
		lo = hi
	}

	// Topological ranks break planned-start ties between dependent
	// zero-length ops and order re-placements. FIFO Kahn over the dense
	// op IDs, identical to Graph.TopoSort but on scratch storage.
	n := g.Len()
	sc.kahn = resized(sc.kahn, n)
	sc.rank = resized(sc.rank, n)
	sc.fifo = sc.fifo[:0]
	for id := 0; id < n; id++ {
		sc.kahn[id] = int32(len(g.In(dataflow.OpID(id))))
		if sc.kahn[id] == 0 {
			sc.fifo = append(sc.fifo, dataflow.OpID(id))
		}
	}
	for i := 0; i < len(sc.fifo); i++ {
		id := sc.fifo[i]
		sc.rank[id] = int32(i)
		for _, e := range g.Out(id) {
			sc.kahn[e.To]--
			if sc.kahn[e.To] == 0 {
				sc.fifo = append(sc.fifo, e.To)
			}
		}
	}

	caches := cfg.Caches
	if caches == nil && cfg.SizeOf != nil {
		caches = make(map[int]*cloud.LRUCache)
	}

	// Pass 1: dataflow operators. Work-conserving: each starts as soon as
	// its predecessors' data has arrived and the previous dataflow
	// operator on its container has finished. Build operators never delay
	// them (priority -1 yields). Operators on failed containers are
	// killed and re-queued onto survivors; survivors are chosen
	// deterministically (least-loaded, lowest index), opening a fresh
	// container only when every candidate is dead.
	//
	// The ready heap holds exactly the eligible operators — those whose
	// scheduled predecessors have all completed — fed by per-op unmet
	// predecessor counts, so each op is pushed once when its last
	// predecessor finishes instead of rescanning the whole pending set
	// per step.
	sc.state = resized(sc.state, n)
	sc.indeg = resized(sc.indeg, n)
	sc.waitCont = resized(sc.waitCont, n)
	sc.waitOrder = resized(sc.waitOrder, n)
	remaining := 0
	for _, a := range assigns {
		if g.Op(a.Op).Optional {
			continue
		}
		sc.state[a.Op] = stWaiting
		sc.waitCont[a.Op] = int32(a.Container)
		sc.waitOrder[a.Op] = a.Start
		remaining++
	}
	for id := 0; id < n; id++ {
		if sc.state[id] != stWaiting {
			continue
		}
		for _, e := range g.In(dataflow.OpID(id)) {
			if sc.state[e.From] == stWaiting {
				sc.indeg[id]++
			}
		}
	}
	sc.heap = sc.heap[:0]
	for _, a := range assigns {
		id := a.Op
		if sc.state[id] == stWaiting && sc.indeg[id] == 0 {
			sc.state[id] = stQueued
			sc.heap = heapPush(sc.heap, pendingFlow{
				op: id, cont: int(sc.waitCont[id]), order: sc.waitOrder[id], rank: int(sc.rank[id]),
			})
		}
	}

	nC := s.NumSlots()
	sc.contClock = resized(sc.contClock, nC)
	nextFresh := nC
	sc.cands = sc.cands[:0]
	for _, gr := range sc.groups {
		sc.cands = append(sc.cands, gr.c)
	}
	// arrivals records realized intervals of re-placed ops per container,
	// so pass 2 can preempt builds that planned for that idle time. Only
	// faulty replays populate it.
	type interval struct{ start, end float64 }
	var arrivals map[int][]interval
	addArrival := func(c int, iv interval) {
		if arrivals == nil {
			arrivals = make(map[int][]interval)
		}
		arrivals[c] = append(arrivals[c], iv)
	}

	chooseSurvivor := func(exclude int, t float64) int {
		best, bestClock := -1, math.Inf(1)
		for _, c := range sc.cands {
			if c == exclude || (fs != nil && fs.deadAt(c, t)) {
				continue
			}
			if fs != nil {
				if ns, ok := fs.noStart[c]; ok && t >= ns-timeEps {
					continue // inside a revocation notice window
				}
			}
			if sc.contClock[c] < bestClock {
				best, bestClock = c, sc.contClock[c]
			}
		}
		if best < 0 {
			best = nextFresh
			nextFresh++
			sc.cands = append(sc.cands, best)
			sc.contClock = append(sc.contClock, 0)
		}
		return best
	}

	for remaining > 0 {
		if cancelled() {
			return Result{Cancelled: true}
		}
		if len(sc.heap) == 0 {
			// Unreachable for DAGs (Connect rejects cycles); force the
			// lowest-ID unfinished op so the loop cannot livelock.
			for id := 0; id < n; id++ {
				if sc.state[id] == stWaiting {
					sc.state[id] = stQueued
					sc.heap = heapPush(sc.heap, pendingFlow{
						op: dataflow.OpID(id), cont: int(sc.waitCont[id]),
						order: sc.waitOrder[id], rank: int(sc.rank[id]),
					})
					break
				}
			}
			if len(sc.heap) == 0 {
				break
			}
		}
		var p pendingFlow
		sc.heap, p, sc.stack = heapPopCluster(sc.heap, sc.stack)

		op := g.Op(p.op)
		c := p.cont
		ctype := s.ContainerType(c)
		ready := 0.0
		for _, e := range g.In(p.op) {
			pr, done := res.Ops[e.From]
			if !done || !pr.Completed {
				continue
			}
			t := pr.End
			if pr.Container != c {
				t += ctype.Spec.TransferSeconds(e.Size)
			}
			if t > ready {
				ready = t
			}
		}
		start := math.Max(math.Max(sc.contClock[c], ready), p.minStart)
		// A failed (or notice-window) container accepts no new operators:
		// re-place without losing work.
		if fs != nil {
			if ns, ok := fs.noStart[c]; ok && start >= ns-timeEps {
				markBoth(fs.killEv[c])
				res.ReplacedOps++
				nc := chooseSurvivor(c, start)
				sc.heap = heapPush(sc.heap, pendingFlow{
					op: p.op, cont: nc, order: start, minStart: start, rank: p.rank,
				})
				continue
			}
		}
		ins.opWait.Observe(start - ready)
		dur := actual(op) / ctype.SpeedFactor
		if fs != nil {
			dur *= fs.slowFactor(c, start, markInjected, recoveredSlow)
			dur += fs.storageDelay(c, start, cfg.Backoff, markBoth)
		}
		// Input reads: a cache miss transfers the partition from the
		// storage service before the operator can run (§6.1).
		if cfg.SizeOf != nil && len(op.Reads) > 0 {
			lru := caches[c]
			if lru == nil {
				lru = cloud.NewLRUCache(ctype.Spec.DiskMB).Instrument(cfg.Metrics)
				caches[c] = lru
			}
			for _, path := range op.Reads {
				size := cfg.SizeOf(path)
				if size <= 0 {
					continue
				}
				if !lru.Get(path) {
					dur += ctype.Spec.TransferSeconds(size)
					res.TransferredMB += size
					lru.Put(path, size)
				}
			}
		}
		end := start + dur
		// In-flight at the container's failure time: the work since start
		// is lost; the operator restarts from scratch on a survivor.
		if fs != nil {
			if fa, dead := fs.failAt[c]; dead && end > fa+timeEps {
				markBoth(fs.killEv[c])
				addWasted(fa - start)
				res.ReplacedOps++
				sc.contClock[c] = fa
				nc := chooseSurvivor(c, fa)
				sc.heap = heapPush(sc.heap, pendingFlow{
					op: p.op, cont: nc, order: fa, minStart: fa, rank: p.rank,
				})
				continue
			}
		}
		observeRun(op.Kind, dur)
		r := OpResult{Op: p.op, Container: c, Start: start, End: end, Completed: true}
		if a, planned := s.Assignment(p.op); !planned || a.Container != c {
			r.Replaced = true
			addArrival(c, interval{start, end})
		}
		res.Ops[p.op] = r
		sc.contClock[c] = end
		sc.state[p.op] = stDone
		remaining--
		for _, e := range g.Out(p.op) {
			if sc.state[e.To] != stWaiting {
				continue
			}
			sc.indeg[e.To]--
			if sc.indeg[e.To] == 0 {
				sc.state[e.To] = stQueued
				sc.heap = heapPush(sc.heap, pendingFlow{
					op: e.To, cont: int(sc.waitCont[e.To]), order: sc.waitOrder[e.To], rank: int(sc.rank[e.To]),
				})
			}
		}
	}

	// Realized lease per container: whole quanta covering the last
	// dataflow activity (idle containers are deleted when their current
	// quantum expires, §3). A container holding only build operators is a
	// dedicated build container (the delayed-building extension): its
	// lease is the planned quanta the service deliberately paid for, and
	// builds running long are still cut at that boundary. A failed
	// container is charged through the quantum containing the failure;
	// the unusable remainder of that lease is fault waste.
	sc.leaseEnd = resized(sc.leaseEnd, nextFresh)
	sc.buildKill = resized(sc.buildKill, nextFresh)
	sc.leased = resized(sc.leased, nextFresh)
	for _, gr := range sc.groups {
		c := gr.c
		var last float64
		anyFlowOp := false
		for _, a := range assigns[gr.lo:gr.hi] {
			if !g.Op(a.Op).Optional {
				anyFlowOp = true
				if r := res.Ops[a.Op]; r.Container == c && r.End > last {
					last = r.End
				}
			}
		}
		if fs != nil && anyFlowOp {
			// Killed partial runs occupy the container up to the failure.
			if fa, dead := fs.failAt[c]; dead && sc.contClock[c] == fa && fa > last {
				last = fa
			}
		}
		for _, iv := range arrivals[c] {
			if iv.end > last {
				last = iv.end
			}
		}
		if !anyFlowOp && len(arrivals[c]) == 0 {
			for _, a := range assigns[gr.lo:gr.hi] {
				if a.End > last {
					last = a.End
				}
			}
		}
		lease := float64(cfg.Pricing.Quanta(last)) * cfg.Pricing.QuantumSeconds
		sc.buildKill[c] = lease
		if fs != nil {
			if fa, dead := fs.failAt[c]; dead && fa < lease-timeEps {
				markInjected(fs.killEv[c])
				// Pay through the failure's quantum; its tail is waste.
				charged := float64(cfg.Pricing.Quanta(fa)) * cfg.Pricing.QuantumSeconds
				if charged > lease {
					charged = lease
				}
				addWasted(charged - fa)
				lease = charged
				sc.buildKill[c] = math.Min(fa, lease)
			}
		}
		sc.leaseEnd[c] = lease
		sc.leased[c] = true
	}
	for c, ivs := range arrivals {
		if sc.leased[c] {
			continue
		}
		// A fresh container opened by recovery: leased like any other.
		var last float64
		for _, iv := range ivs {
			if iv.end > last {
				last = iv.end
			}
		}
		sc.leaseEnd[c] = float64(cfg.Pricing.Quanta(last)) * cfg.Pricing.QuantumSeconds
		sc.buildKill[c] = sc.leaseEnd[c]
		sc.leased[c] = true
	}

	// Pass 2: build operators run in the realized gaps, in planned order,
	// stopped by the next dataflow operator's realized start, a re-placed
	// arrival, the container's failure, or the lease end.
	for _, gr := range sc.groups {
		if cancelled() {
			return Result{Cancelled: true}
		}
		c := gr.c
		as := assigns[gr.lo:gr.hi]
		if fs != nil {
			fs.resetSlow(c)
		}
		// Realized start of each resident dataflow op on this container,
		// in planned order.
		sc.points = sc.points[:0]
		for i, a := range as {
			if !g.Op(a.Op).Optional {
				if r := res.Ops[a.Op]; r.Container == c {
					sc.points = append(sc.points, flowPoint{idx: i, start: r.Start})
				}
			}
		}
		points := sc.points
		ctype := s.ContainerType(c)
		clock := 0.0
		pi := 0
		for i, a := range as {
			op := g.Op(a.Op)
			if !op.Optional {
				if r := res.Ops[a.Op]; r.Container == c && r.End > clock {
					clock = r.End
				}
				if pi < len(points) && points[pi].idx == i {
					pi++
				}
				continue
			}
			// Kill time: the next resident dataflow op's realized start,
			// a re-placed arrival, the container failure, else the lease
			// end.
			kill := sc.buildKill[c]
			for j := pi; j < len(points); j++ {
				if points[j].idx > i {
					if points[j].start < kill {
						kill = points[j].start
					}
					break
				}
			}
			for _, iv := range arrivals[c] {
				if iv.end > clock+timeEps && iv.start < kill {
					kill = math.Max(iv.start, clock)
				}
			}
			start := clock
			faultKill := false
			if fs != nil {
				if ns, ok := fs.noStart[c]; ok && math.Min(ns, kill) < kill {
					kill = ns // no new work after the failure notice
				}
				if fa, dead := fs.failAt[c]; dead && fa <= kill+timeEps {
					faultKill = true
				}
			}
			dur := actual(op) / ctype.SpeedFactor
			if fs != nil {
				dur *= fs.slowFactor(c, start, markInjected, recoveredSlow)
			}
			end := start + dur
			r := OpResult{Op: a.Op, Container: c, Start: start}
			killReason := ""
			if start >= kill-timeEps {
				r.End = start // preempted before it could run at all
				r.Killed = true
				res.Killed++
				killReason = "preempted"
			} else if end > kill+timeEps {
				r.End = kill // stopped at preemption, expiry or failure
				r.Killed = true
				res.Killed++
				switch {
				case faultKill:
					killReason = "fault"
				case kill >= sc.buildKill[c]-timeEps:
					killReason = "expired"
				default:
					killReason = "preempted"
				}
				if faultKill {
					markInjected(fs.killEv[c])
					addWasted(r.End - r.Start)
				}
			} else {
				r.End = end
				r.Completed = true
				res.CompletedBuilds = append(res.CompletedBuilds, a.Op)
			}
			if r.Killed {
				ins.buildsKilled.Inc()
				if recording {
					cfg.Provenance.Append(provenance.Event{
						Kind: provenance.KindBuildKilled, Flow: cfg.FlowID,
						T: cfg.ProvenanceT0 + r.Start, Op: op.Name,
						Container: c, Start: r.Start, End: r.End, Reason: killReason,
					})
				}
			} else {
				ins.buildsCompleted.Inc()
			}
			observeRun(op.Kind, r.End-r.Start)
			res.Ops[a.Op] = r
			clock = r.End
		}
	}
	sort.Slice(res.CompletedBuilds, func(i, j int) bool {
		return res.CompletedBuilds[i] < res.CompletedBuilds[j]
	})

	// A failed container loses its local disk cache.
	if fs != nil && caches != nil {
		for c := range fs.failAt {
			delete(caches, c)
		}
	}

	// Aggregate metrics, iterating deterministically so a seeded faulty
	// run reproduces byte-identical output.
	sc.ids = sc.ids[:0]
	for id := range res.Ops {
		sc.ids = append(sc.ids, id)
	}
	sort.Slice(sc.ids, func(i, j int) bool { return sc.ids[i] < sc.ids[j] })
	first, last := math.Inf(1), 0.0
	anyFlow := false
	var busy float64
	for _, id := range sc.ids {
		r := res.Ops[id]
		busy += r.End - r.Start
		if g.Op(id).Optional {
			continue
		}
		anyFlow = true
		if r.Start < first {
			first = r.Start
		}
		if r.End > last {
			last = r.End
		}
	}
	if anyFlow {
		res.Makespan = last - first
	}
	var leased float64
	for c := 0; c < nextFresh; c++ {
		if !sc.leased[c] {
			continue
		}
		leased += sc.leaseEnd[c]
		w := 1.0
		if cfg.Pricing.VMPerQuantum > 0 {
			if t := s.ContainerType(c); t.PricePerQuantum > 0 {
				w = t.PricePerQuantum / cfg.Pricing.VMPerQuantum
			}
		}
		res.MoneyQuanta += float64(cfg.Pricing.Quanta(sc.leaseEnd[c])) * w
	}
	res.Fragmentation = leased - busy

	ins.quantaCharged.Add(res.MoneyQuanta)
	ins.fragmentation.Add(res.Fragmentation)
	ins.transferredMB.Add(res.TransferredMB)
	ins.wastedQuanta.Add(res.WastedQuanta)
	span.SetAttr("makespan_seconds", res.Makespan).
		SetAttr("money_quanta", res.MoneyQuanta).
		SetAttr("builds_killed", res.Killed).
		SetAttr("builds_completed", len(res.CompletedBuilds))
	if res.FaultsInjected > 0 {
		span.SetAttr("faults_injected", res.FaultsInjected).
			SetAttr("faults_recovered", res.FaultsRecovered).
			SetAttr("ops_replaced", res.ReplacedOps).
			SetAttr("wasted_quanta", res.WastedQuanta)
	}
	return res
}
