package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"idxflow/internal/cloud"
	"idxflow/internal/dataflow"
	"idxflow/internal/interleave"
	"idxflow/internal/sched"
)

func cfg() Config {
	return Config{Pricing: cloud.DefaultPricing(), Spec: cloud.DefaultSpec()}
}

func schedOpts() sched.Options {
	return sched.Options{
		Pricing:       cloud.DefaultPricing(),
		Spec:          cloud.DefaultSpec(),
		MaxContainers: 10,
		MaxSkyline:    8,
	}
}

func TestExecuteExactEstimatesMatchPlan(t *testing.T) {
	g := dataflow.New()
	a := g.Add(dataflow.Operator{Name: "a", Time: 10})
	b := g.Add(dataflow.Operator{Name: "b", Time: 20})
	if err := g.Connect(a, b, 125); err != nil { // 1 s transfer
		t.Fatal(err)
	}
	o := schedOpts()
	s := sched.NewSchedule(g, o.Pricing, o.Spec)
	s.Append(a, 0, -1)
	s.Append(b, 1, -1)

	res := Execute(s, cfg())
	if math.Abs(res.Makespan-s.Makespan()) > 1e-9 {
		t.Errorf("realized makespan %g != planned %g", res.Makespan, s.Makespan())
	}
	if math.Abs(res.MoneyQuanta-s.MoneyQuanta()) > 1e-9 {
		t.Errorf("realized money %g != planned %g", res.MoneyQuanta, s.MoneyQuanta())
	}
	if res.Killed != 0 {
		t.Errorf("killed = %d, want 0", res.Killed)
	}
	rb := res.Ops[b]
	if math.Abs(rb.Start-11) > 1e-9 {
		t.Errorf("b started at %g, want 11 (transfer delay)", rb.Start)
	}
}

func TestExecuteWithRuntimeErrors(t *testing.T) {
	g := dataflow.New()
	a := g.Add(dataflow.Operator{Name: "a", Time: 10})
	b := g.Add(dataflow.Operator{Name: "b", Time: 10})
	if err := g.Connect(a, b, 0); err != nil {
		t.Fatal(err)
	}
	o := schedOpts()
	s := sched.NewSchedule(g, o.Pricing, o.Spec)
	s.Append(a, 0, -1)
	s.Append(b, 0, -1)

	c := cfg()
	c.Actual = func(op *dataflow.Operator) float64 { return op.Time * 2 }
	res := Execute(s, c)
	if math.Abs(res.Makespan-40) > 1e-9 {
		t.Errorf("makespan with 2x runtimes = %g, want 40", res.Makespan)
	}
}

func TestBuildOpCompletesInGap(t *testing.T) {
	g := dataflow.New()
	a := g.Add(dataflow.Operator{Name: "a", Time: 10})
	bi := g.Add(dataflow.Operator{Name: "build", Time: 20, Optional: true, Priority: -1})
	o := schedOpts()
	s := sched.NewSchedule(g, o.Pricing, o.Spec)
	s.Append(a, 0, -1) // [0,10], lease to 60
	if _, err := s.PlaceAt(bi, 0, 10, -1); err != nil {
		t.Fatal(err)
	}
	res := Execute(s, cfg())
	if res.Killed != 0 || len(res.CompletedBuilds) != 1 {
		t.Errorf("killed=%d completed=%v, want build completed", res.Killed, res.CompletedBuilds)
	}
	r := res.Ops[bi]
	if r.Start != 10 || r.End != 30 {
		t.Errorf("build interval = [%g,%g], want [10,30]", r.Start, r.End)
	}
}

func TestBuildOpKilledAtLeaseEnd(t *testing.T) {
	g := dataflow.New()
	a := g.Add(dataflow.Operator{Name: "a", Time: 10})
	bi := g.Add(dataflow.Operator{Name: "build", Time: 45, Optional: true, Priority: -1})
	o := schedOpts()
	s := sched.NewSchedule(g, o.Pricing, o.Spec)
	s.Append(a, 0, -1)
	if _, err := s.PlaceAt(bi, 0, 10, -1); err != nil {
		t.Fatal(err)
	}
	c := cfg()
	// Build actually takes 60 s, exceeding the lease end at 60.
	c.Actual = func(op *dataflow.Operator) float64 {
		if op.Optional {
			return 60
		}
		return op.Time
	}
	res := Execute(s, c)
	if res.Killed != 1 {
		t.Fatalf("killed = %d, want 1", res.Killed)
	}
	r := res.Ops[bi]
	if !r.Killed || math.Abs(r.End-60) > 1e-9 {
		t.Errorf("build = %+v, want killed at 60 (quantum expiry)", r)
	}
	// The kill must not extend the lease.
	if res.MoneyQuanta != 1 {
		t.Errorf("money = %g quanta, want 1", res.MoneyQuanta)
	}
}

func TestBuildOpKilledByPreemption(t *testing.T) {
	// Dataflow: a on c0 [0,10], c depends on a, planned on c0 at [40,50];
	// build placed in the gap [10,40]. If a runs long, the gap shrinks and
	// the build is preempted by c's realized start.
	g := dataflow.New()
	a := g.Add(dataflow.Operator{Name: "a", Time: 10})
	c := g.Add(dataflow.Operator{Name: "c", Time: 10})
	if err := g.Connect(a, c, 0); err != nil {
		t.Fatal(err)
	}
	bi := g.Add(dataflow.Operator{Name: "build", Time: 30, Optional: true, Priority: -1})
	o := schedOpts()
	s := sched.NewSchedule(g, o.Pricing, o.Spec)
	s.Append(a, 0, -1)
	if _, err := s.PlaceAt(c, 0, 40, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PlaceAt(bi, 0, 10, -1); err != nil {
		t.Fatal(err)
	}
	res := Execute(s, cfg())
	// Realized: a [0,10], c starts at its dependency-ready time 10 (work
	// conserving), so the build is preempted immediately after c... but
	// planned order on the container is a, build, c: the build starts at
	// 10 and c's realized start is 10, so the build is killed at once.
	r := res.Ops[bi]
	if !r.Killed {
		t.Errorf("build not killed: %+v", r)
	}
	if rc := res.Ops[c]; rc.Start != 10 {
		t.Errorf("c started at %g, want 10 (not delayed by build)", rc.Start)
	}
}

func TestCacheAvoidsRepeatTransfers(t *testing.T) {
	g := dataflow.New()
	a := g.Add(dataflow.Operator{Name: "a", Time: 10, Reads: []string{"t/0"}})
	b := g.Add(dataflow.Operator{Name: "b", Time: 10, Reads: []string{"t/0"}})
	if err := g.Connect(a, b, 0); err != nil {
		t.Fatal(err)
	}
	o := schedOpts()
	s := sched.NewSchedule(g, o.Pricing, o.Spec)
	s.Append(a, 0, -1)
	s.Append(b, 0, -1)
	c := cfg()
	c.SizeOf = func(path string) float64 { return 125 } // 1 s transfer
	res := Execute(s, c)
	// Only the first read transfers: 125 MB once.
	if math.Abs(res.TransferredMB-125) > 1e-9 {
		t.Errorf("TransferredMB = %g, want 125", res.TransferredMB)
	}
	// a takes 11 s (read+compute), b takes 10 s (cache hit).
	if got := res.Ops[b].End; math.Abs(got-21) > 1e-9 {
		t.Errorf("b end = %g, want 21", got)
	}
}

func TestCacheMissesAcrossContainers(t *testing.T) {
	g := dataflow.New()
	a := g.Add(dataflow.Operator{Name: "a", Time: 10, Reads: []string{"t/0"}})
	b := g.Add(dataflow.Operator{Name: "b", Time: 10, Reads: []string{"t/0"}})
	o := schedOpts()
	s := sched.NewSchedule(g, o.Pricing, o.Spec)
	s.Append(a, 0, -1)
	s.Append(b, 1, -1)
	c := cfg()
	c.SizeOf = func(path string) float64 { return 125 }
	res := Execute(s, c)
	if math.Abs(res.TransferredMB-250) > 1e-9 {
		t.Errorf("TransferredMB = %g, want 250 (two containers, two misses)", res.TransferredMB)
	}
}

// TestRealizedMatchesPlannedProperty: with exact estimates, realized
// makespan and money never exceed the plan (work-conserving execution can
// only shift ops earlier), and with no optional ops nothing is killed.
func TestRealizedMatchesPlannedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dataflow.New()
		n := 3 + rng.Intn(10)
		ids := make([]dataflow.OpID, n)
		for i := range ids {
			ids[i] = g.Add(dataflow.Operator{Name: "op", Time: 1 + rng.Float64()*50})
		}
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if rng.Float64() < 0.3 {
					if err := g.Connect(ids[j], ids[i], rng.Float64()*20); err != nil {
						return false
					}
				}
			}
		}
		sky := sched.NewSkyline(schedOpts()).Schedule(g)
		for _, s := range sky {
			res := Execute(s, cfg())
			if res.Killed != 0 {
				return false
			}
			if res.Makespan > s.Makespan()+1e-6 {
				t.Logf("seed %d: realized %g > planned %g", seed, res.Makespan, s.Makespan())
				return false
			}
			if res.MoneyQuanta > s.MoneyQuanta()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestInterleavedExecution runs an LP-interleaved schedule end to end and
// checks builds complete without affecting the dataflow.
func TestInterleavedExecution(t *testing.T) {
	g := dataflow.New()
	src := g.Add(dataflow.Operator{Name: "src", Time: 20})
	sink := g.Add(dataflow.Operator{Name: "sink", Time: 20})
	for i := 0; i < 4; i++ {
		m := g.Add(dataflow.Operator{Name: "mid", Time: 25})
		if err := g.Connect(src, m, 1); err != nil {
			t.Fatal(err)
		}
		if err := g.Connect(m, sink, 1); err != nil {
			t.Fatal(err)
		}
	}
	var builds []dataflow.OpID
	for i := 0; i < 5; i++ {
		builds = append(builds, g.Add(dataflow.Operator{
			Name: "build", Time: 8, Optional: true, Priority: -1,
		}))
	}
	lp := &interleave.LP{Scheduler: sched.NewSkyline(schedOpts())}
	skyline := lp.Interleave(g, nil)
	s := sched.Fastest(skyline)
	if s == nil {
		t.Fatal("no schedule")
	}
	res := Execute(s, cfg())
	if math.Abs(res.Makespan-s.Makespan()) > 1e-6 {
		t.Errorf("interleaving changed realized makespan: %g vs %g", res.Makespan, s.Makespan())
	}
	placed := 0
	for _, id := range builds {
		if _, ok := s.Assignment(id); ok {
			placed++
		}
	}
	if placed > 0 && len(res.CompletedBuilds)+res.Killed != placed {
		t.Errorf("placed %d builds but completed %d + killed %d",
			placed, len(res.CompletedBuilds), res.Killed)
	}
}

// TestExecuteHeterogeneousTypes: the simulator honours container types —
// ops on a 2x container run in half the time and money is price-weighted.
func TestExecuteHeterogeneousTypes(t *testing.T) {
	g := dataflow.New()
	a := g.Add(dataflow.Operator{Name: "a", Time: 60})
	o := schedOpts()
	o.Types = cloud.DefaultVMTypes()
	s := sched.NewSchedule(g, o.Pricing, o.Spec)
	s.Types = o.Types
	if err := s.SetContainerType(0, 1); err != nil { // 2x speed, $0.22/q
		t.Fatal(err)
	}
	if _, err := s.Append(a, 0, -1); err != nil {
		t.Fatal(err)
	}
	res := Execute(s, cfg())
	if math.Abs(res.Makespan-30) > 1e-9 {
		t.Errorf("makespan = %g on 2x container, want 30", res.Makespan)
	}
	// 1 quantum at 2.2x the baseline price.
	if math.Abs(res.MoneyQuanta-2.2) > 1e-9 {
		t.Errorf("money = %g, want 2.2", res.MoneyQuanta)
	}
}
