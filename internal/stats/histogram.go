// Package stats provides equi-depth histograms — the per-column statistics
// the paper's model keeps per table (§3: "The statistics contain the
// average size of the fields of each column"; "the statistics (e.g.,
// histograms) do not change radically over time"). The advisor uses them
// to estimate range selectivities instead of assuming a constant.
package stats

import (
	"fmt"
	"sort"
)

// Histogram is an equi-depth histogram over int64 keys: every bucket holds
// approximately the same number of values, so bucket boundaries are dense
// where the data is dense.
type Histogram struct {
	// bounds[i] is the upper bound (inclusive) of bucket i; bucket i
	// covers (bounds[i-1], bounds[i]].
	bounds []int64
	// counts[i] is the exact number of sampled values in bucket i.
	counts []int64
	min    int64
	total  int64
}

// Build constructs a histogram with at most buckets buckets from values
// (consumed and sorted in place). It returns an error for an empty input
// or a non-positive bucket count.
func Build(values []int64, buckets int) (*Histogram, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("stats: empty input")
	}
	if buckets <= 0 {
		return nil, fmt.Errorf("stats: need at least one bucket")
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	h := &Histogram{min: values[0], total: int64(len(values))}

	per := len(values) / buckets
	if per < 1 {
		per = 1
	}
	for i := per - 1; i < len(values); i += per {
		// Extend the bucket to the end of a run of equal values so a key
		// never spans buckets.
		j := i
		for j+1 < len(values) && values[j+1] == values[j] {
			j++
		}
		h.push(values[j], int64(j+1))
		i = j
	}
	// Ensure the last value closes the final bucket.
	if last := values[len(values)-1]; len(h.bounds) == 0 || h.bounds[len(h.bounds)-1] < last {
		h.push(last, int64(len(values)))
	}
	return h, nil
}

// push appends a bucket ending at bound covering values up to cumulative
// count cum.
func (h *Histogram) push(bound int64, cum int64) {
	var prev int64
	for _, c := range h.counts {
		prev += c
	}
	if cum <= prev {
		return
	}
	h.bounds = append(h.bounds, bound)
	h.counts = append(h.counts, cum-prev)
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.bounds) }

// Total returns the number of sampled values.
func (h *Histogram) Total() int64 { return h.total }

// Min and Max return the sampled extremes.
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest sampled value.
func (h *Histogram) Max() int64 {
	if len(h.bounds) == 0 {
		return h.min
	}
	return h.bounds[len(h.bounds)-1]
}

// EstimateRange returns the estimated fraction of values in [lo, hi)
// (linear interpolation within partially covered buckets).
func (h *Histogram) EstimateRange(lo, hi int64) float64 {
	if hi <= lo || h.total == 0 {
		return 0
	}
	var covered float64
	prevBound := h.min - 1
	for i, bound := range h.bounds {
		bLo, bHi := prevBound+1, bound // bucket covers [bLo, bHi]
		prevBound = bound
		if hi <= bLo || lo > bHi {
			continue
		}
		// Overlap of [lo, hi) with [bLo, bHi+1).
		oLo, oHi := max64(lo, bLo), min64(hi, bHi+1)
		width := float64(bHi-bLo) + 1
		covered += float64(h.counts[i]) * float64(oHi-oLo) / width
	}
	frac := covered / float64(h.total)
	if frac > 1 {
		frac = 1
	}
	return frac
}

// EstimateEquals returns the estimated fraction of values equal to key.
func (h *Histogram) EstimateEquals(key int64) float64 {
	return h.EstimateRange(key, key+1)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
