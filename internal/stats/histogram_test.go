package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, 4); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Build([]int64{1}, 0); err == nil {
		t.Error("zero buckets accepted")
	}
}

func TestUniformEstimates(t *testing.T) {
	values := make([]int64, 10000)
	for i := range values {
		values[i] = int64(i)
	}
	h, err := Build(values, 20)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 10000 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Min() != 0 || h.Max() != 9999 {
		t.Errorf("range = [%d, %d]", h.Min(), h.Max())
	}
	// 10% range.
	got := h.EstimateRange(1000, 2000)
	if math.Abs(got-0.1) > 0.02 {
		t.Errorf("EstimateRange(1000,2000) = %g, want ~0.1", got)
	}
	// Full range.
	if got := h.EstimateRange(0, 10000); math.Abs(got-1) > 0.01 {
		t.Errorf("full range = %g, want 1", got)
	}
	// Empty and out-of-range.
	if got := h.EstimateRange(5, 5); got != 0 {
		t.Errorf("empty range = %g", got)
	}
	if got := h.EstimateRange(20000, 30000); got != 0 {
		t.Errorf("out-of-range = %g", got)
	}
}

func TestSkewedEstimates(t *testing.T) {
	// 90% of the mass at small keys, 10% spread high.
	rng := rand.New(rand.NewSource(1))
	values := make([]int64, 20000)
	for i := range values {
		if rng.Float64() < 0.9 {
			values[i] = rng.Int63n(100)
		} else {
			values[i] = 1000 + rng.Int63n(100000)
		}
	}
	h, err := Build(values, 32)
	if err != nil {
		t.Fatal(err)
	}
	low := h.EstimateRange(0, 100)
	if math.Abs(low-0.9) > 0.05 {
		t.Errorf("low-range mass = %g, want ~0.9", low)
	}
	high := h.EstimateRange(1000, 200000)
	if math.Abs(high-0.1) > 0.05 {
		t.Errorf("high-range mass = %g, want ~0.1", high)
	}
}

func TestEstimateEqualsHeavyHitter(t *testing.T) {
	values := make([]int64, 0, 1000)
	for i := 0; i < 500; i++ {
		values = append(values, 42)
	}
	for i := 0; i < 500; i++ {
		values = append(values, int64(1000+i))
	}
	h, err := Build(values, 16)
	if err != nil {
		t.Fatal(err)
	}
	got := h.EstimateEquals(42)
	if got < 0.3 || got > 0.7 {
		t.Errorf("EstimateEquals(42) = %g, want ~0.5", got)
	}
}

// TestEstimatesPropertyAgainstExact: on random data, estimated range
// fractions stay within a tolerance of the exact answer.
func TestEstimatesPropertyAgainstExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2000 + rng.Intn(3000)
		values := make([]int64, n)
		keep := make([]int64, n)
		for i := range values {
			values[i] = rng.Int63n(10000)
			keep[i] = values[i]
		}
		h, err := Build(values, 24)
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			lo := rng.Int63n(11000) - 500
			hi := lo + rng.Int63n(5000)
			exact := 0
			for _, v := range keep {
				if v >= lo && v < hi {
					exact++
				}
			}
			est := h.EstimateRange(lo, hi)
			if math.Abs(est-float64(exact)/float64(n)) > 0.08 {
				t.Logf("seed %d: range [%d,%d) est %g exact %g",
					seed, lo, hi, est, float64(exact)/float64(n))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestBucketCountsSumToTotal: counts always partition the input.
func TestBucketCountsSumToTotal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5000)
		values := make([]int64, n)
		for i := range values {
			values[i] = rng.Int63n(500)
		}
		h, err := Build(values, 1+rng.Intn(40))
		if err != nil {
			return false
		}
		var sum int64
		for _, c := range h.counts {
			sum += c
		}
		return sum == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
