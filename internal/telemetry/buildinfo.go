package telemetry

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary: the module version (or VCS
// revision) baked in by the Go linker, the toolchain, and GOMAXPROCS.
type BuildInfo struct {
	Version    string `json:"version"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// ReadBuildInfo collects the binary's build identity. Version falls back
// to "devel" when the binary was not built from a versioned module and
// carries no VCS stamp (e.g. `go test` binaries).
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{
		Version:    "devel",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		bi.Version = v
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			bi.Version = s.Value[:12]
		}
	}
	return bi
}

// RegisterBuildInfo publishes the idxflow_build_info gauge: constant 1
// with the binary's identity as labels, the conventional way to make
// version visible at /metrics without a dedicated endpoint.
func RegisterBuildInfo(r *Registry) {
	if r == nil {
		return
	}
	bi := ReadBuildInfo()
	r.GaugeVec("idxflow_build_info",
		"Build identity of the running binary (constant 1; identity in labels).",
		"version", "go_version", "gomaxprocs").
		With(bi.Version, bi.GoVersion, itoa(bi.GOMAXPROCS)).Set(1)
}

// itoa avoids strconv for the one small int we format here.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
