package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every metric in the registry in the Prometheus
// text exposition format (version 0.0.4), the format scraped from a
// /metrics endpoint. Families are sorted by name and series by label
// values, so the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make(map[string]*family, len(r.fams))
	for n, f := range r.fams {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	for _, name := range names {
		if err := fams[name].write(w); err != nil {
			return err
		}
	}
	return nil
}

// seriesView is a point-in-time copy of one labeled series for rendering.
type seriesView struct {
	labels string // rendered {k="v",...} block, "" when unlabeled
	metric any
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	views := make([]seriesView, 0, len(f.series))
	for key, m := range f.series {
		views = append(views, seriesView{labels: f.renderLabels(key), metric: m})
	}
	f.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].labels < views[j].labels })

	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, v := range views {
		var err error
		switch m := v.metric.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, v.labels, formatFloat(m.Value()))
		case *Gauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, v.labels, formatFloat(m.Value()))
		case *Histogram:
			err = writeHistogram(w, f.name, v.labels, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders the cumulative _bucket series plus _sum and
// _count.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	uppers, cum := h.Buckets()
	for i, le := range uppers {
		leStr := "+Inf"
		if !math.IsInf(le, 1) {
			leStr = formatFloat(le)
		}
		lbl := mergeLabel(labels, `le="`+leStr+`"`)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, lbl, cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
	return err
}

// mergeLabel appends one rendered pair to an existing {..} block.
func mergeLabel(labels, pair string) string {
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// renderLabels decodes a series key back into a deterministic
// {k="v",...} block.
func (f *family) renderLabels(key string) string {
	if len(f.labelKeys) == 0 {
		return ""
	}
	values := decodeKey(key)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range f.labelKeys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// decodeKey reverses family.encode's length-prefixed packing.
func decodeKey(key string) []string {
	var out []string
	for len(key) > 0 {
		colon := strings.IndexByte(key, ':')
		if colon < 0 {
			break
		}
		n, err := strconv.Atoi(key[:colon])
		if err != nil || n < 0 || colon+1+n > len(key) {
			break
		}
		out = append(out, key[colon+1:colon+1+n])
		key = key[colon+1+n:]
	}
	return out
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
