package telemetry

import (
	"strings"
	"testing"
)

// TestPrometheusExpositionGolden locks the exact text exposition output:
// sorted families, HELP/TYPE headers, labeled series, histogram
// _bucket/_sum/_count with a +Inf bucket.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("idxflow_flows_finished_total", "Dataflows finished within the horizon.").Add(3)
	r.Gauge("idxflow_storage_mb", "Built index bytes in the storage service.").Set(12.5)
	h := r.Histogram("idxflow_flow_makespan_seconds", "Realized dataflow makespan.", []float64{60, 120, 240})
	h.Observe(50)
	h.Observe(100)
	h.Observe(500)
	vec := r.CounterVec("idxflow_http_requests_total", "HTTP requests served.", "path", "code")
	vec.With("/metrics", "200").Add(2)
	vec.With("/v1/dataflows", "200").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP idxflow_flow_makespan_seconds Realized dataflow makespan.
# TYPE idxflow_flow_makespan_seconds histogram
idxflow_flow_makespan_seconds_bucket{le="60"} 1
idxflow_flow_makespan_seconds_bucket{le="120"} 2
idxflow_flow_makespan_seconds_bucket{le="240"} 2
idxflow_flow_makespan_seconds_bucket{le="+Inf"} 3
idxflow_flow_makespan_seconds_sum 650
idxflow_flow_makespan_seconds_count 3
# HELP idxflow_flows_finished_total Dataflows finished within the horizon.
# TYPE idxflow_flows_finished_total counter
idxflow_flows_finished_total 3
# HELP idxflow_http_requests_total HTTP requests served.
# TYPE idxflow_http_requests_total counter
idxflow_http_requests_total{path="/metrics",code="200"} 2
idxflow_http_requests_total{path="/v1/dataflows",code="200"} 1
# HELP idxflow_storage_mb Built index bytes in the storage service.
# TYPE idxflow_storage_mb gauge
idxflow_storage_mb 12.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "line1\nline2 with \\ backslash", "path").
		With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP esc_total line1\nline2 with \\ backslash`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{path="a\"b\\c\n"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}
