package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestQuantileEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Fatal("nil histogram should return NaN")
	}
	h := NewRegistry().Histogram("q_empty", "", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram should return NaN")
	}
	h.Observe(1)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(h.Quantile(q)) {
			t.Errorf("Quantile(%g) should be NaN", q)
		}
	}
}

func TestQuantileLinearInterpolation(t *testing.T) {
	h := NewRegistry().Histogram("q_interp", "", []float64{10, 20, 30})
	// 10 observations in (10, 20]: the median rank lands mid-bucket.
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	if got := h.Quantile(0.5); got != 15 {
		t.Errorf("p50 = %g, want 15 (midpoint of (10,20])", got)
	}
	if got := h.Quantile(1); got != 20 {
		t.Errorf("p100 = %g, want 20 (bucket upper)", got)
	}
	// First bucket interpolates from lower bound 0.
	h2 := NewRegistry().Histogram("q_first", "", []float64{10, 20})
	for i := 0; i < 4; i++ {
		h2.Observe(5)
	}
	if got := h2.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %g, want 5 (half of first bucket)", got)
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	h := NewRegistry().Histogram("q_multi", "", []float64{1, 2, 4, 8})
	// 2 obs in (0,1], 6 in (1,2], 2 in (2,4].
	h.Observe(0.5)
	h.Observe(0.5)
	for i := 0; i < 6; i++ {
		h.Observe(1.5)
	}
	h.Observe(3)
	h.Observe(3)
	// rank(0.5)=5 → 3 into the 6-count (1,2] bucket → 1 + 3/6 = 1.5.
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("p50 = %g, want 1.5", got)
	}
	// rank(0.9)=9 → 1 into the 2-count (2,4] bucket → 2 + 1 = 3.
	if got := h.Quantile(0.9); math.Abs(got-3) > 1e-12 {
		t.Errorf("p90 = %g, want 3", got)
	}
}

func TestQuantileInfBucketClamps(t *testing.T) {
	h := NewRegistry().Histogram("q_inf", "", []float64{1, 2})
	h.Observe(100) // lands in +Inf bucket
	h.Observe(100)
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("quantile in +Inf bucket = %g, want clamp to last finite upper 2", got)
	}
}

func TestReadBuildInfo(t *testing.T) {
	bi := ReadBuildInfo()
	if bi.GoVersion == "" {
		t.Fatal("GoVersion empty")
	}
	if !strings.HasPrefix(bi.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want go-prefixed", bi.GoVersion)
	}
	if bi.GOMAXPROCS < 1 {
		t.Errorf("GOMAXPROCS = %d", bi.GOMAXPROCS)
	}
	if bi.Version == "" {
		t.Error("Version empty (want a revision or devel fallback)")
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "idxflow_build_info{") {
		t.Fatalf("scrape missing idxflow_build_info:\n%s", out)
	}
	if !strings.Contains(out, `go_version="`+ReadBuildInfo().GoVersion+`"`) {
		t.Errorf("scrape missing go_version label:\n%s", out)
	}
	if !strings.Contains(out, "} 1") {
		t.Errorf("build info gauge should be 1:\n%s", out)
	}
	// Idempotent: registering twice must not panic or duplicate.
	RegisterBuildInfo(reg)
}
