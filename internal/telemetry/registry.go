// Package telemetry is the observability substrate of idxflow: a
// thread-safe metrics registry (counters, gauges, fixed-bucket histograms,
// with optional labels) that renders the Prometheus text exposition format,
// and a lightweight tracer producing nested spans exportable as Chrome
// trace-event JSON (chrome://tracing / Perfetto compatible) or JSONL.
//
// Everything is stdlib-only and allocation-light: metric handles are
// created once (get-or-create by name) and then updated lock-free
// (counters/gauges) or under a small per-histogram mutex. All handle
// methods are nil-receiver safe, so instrumented code never needs to
// branch on "is telemetry configured": a nil *Counter, *Gauge, *Histogram,
// *Tracer or *Span is a no-op.
//
// A package-level Default registry and DefaultTracer serve the binaries;
// libraries accept an injected *Registry / *Tracer so tests stay isolated.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically non-decreasing value. The zero value is ready
// to use; a nil Counter is a no-op.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative or NaN deltas are ignored (a
// counter never goes down).
func (c *Counter) Add(v float64) {
	if c == nil || !(v > 0) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down. The zero value is ready to
// use; a nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v (which may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (cumulative on export,
// like Prometheus). A nil Histogram is a no-op.
type Histogram struct {
	mu     sync.Mutex
	uppers []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []uint64  // len(uppers)+1, non-cumulative per bucket
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-th quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation within the bucket that spans the
// target rank — the same estimate Prometheus's histogram_quantile gives.
// The first finite bucket interpolates from a lower bound of 0; ranks that
// land in the +Inf bucket clamp to the last finite upper bound (there is
// no width to interpolate across). Returns NaN when the histogram is nil,
// empty, or q is out of range.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	rank := q * float64(h.count)
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.uppers) { // +Inf bucket
			if len(h.uppers) == 0 {
				return math.NaN()
			}
			return h.uppers[len(h.uppers)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.uppers[i-1]
		}
		if c == 0 {
			return h.uppers[i]
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lower + (h.uppers[i]-lower)*frac
	}
	return h.uppers[len(h.uppers)-1]
}

// Buckets returns the upper bounds and the cumulative count at each bound,
// ending with the +Inf bucket (whose cumulative count equals Count()).
func (h *Histogram) Buckets() (uppers []float64, cumulative []uint64) {
	if h == nil {
		return nil, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	uppers = append([]float64(nil), h.uppers...)
	uppers = append(uppers, math.Inf(1))
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cumulative[i] = acc
	}
	return uppers, cumulative
}

// ExponentialBuckets returns count upper bounds starting at start and
// multiplying by factor, for Registry.Histogram. It panics on a
// non-positive start, a factor <= 1 or a count < 1, like the equivalent
// Prometheus helper.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic(fmt.Sprintf("telemetry: invalid ExponentialBuckets(%g, %g, %d)", start, factor, count))
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DefBuckets are generic latency-style buckets (seconds) used when a
// histogram is registered with nil buckets.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// family is one named metric with all its labeled series.
type family struct {
	name, help string
	kind       metricKind
	labelKeys  []string
	buckets    []float64 // histogram families only

	mu     sync.Mutex
	series map[string]any // encoded label values -> *Counter | *Gauge | *Histogram
}

// Registry holds metric families. Use NewRegistry; a nil Registry hands
// out nil handles, so instrumenting against a possibly-nil registry is
// safe and free.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
	memo sync.Map // caller-provided key -> memoized instrument bundle
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var std = NewRegistry()

// Default returns the package-level registry used by the binaries when no
// registry is injected.
func Default() *Registry { return std }

// Memo returns the value cached in this registry under key, calling build
// and caching its result on first use. It lets hot callers resolve a
// bundle of instrument handles once per registry instead of re-running the
// name->family lookups on every operation; because the cache lives on the
// registry, it dies with it — short-lived per-experiment registries leak
// nothing. A nil Registry just calls build (the handles it yields are
// nil-receiver no-ops anyway). Concurrent first calls may each run build,
// but all callers observe the same stored value.
func (r *Registry) Memo(key any, build func() any) any {
	if r == nil {
		return build()
	}
	if v, ok := r.memo.Load(key); ok {
		return v
	}
	v, _ := r.memo.LoadOrStore(key, build())
	return v
}

// getFamily gets or creates a family, enforcing kind, label and bucket
// consistency. Re-registering a name with a different shape is a
// programming error and panics (matching the Prometheus client's
// behaviour).
func (r *Registry) getFamily(name, help string, kind metricKind, labelKeys []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %v, was %v", name, kind, f.kind))
		}
		if len(f.labelKeys) != len(labelKeys) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with %d labels, had %d", name, len(labelKeys), len(f.labelKeys)))
		}
		for i := range labelKeys {
			if f.labelKeys[i] != labelKeys[i] {
				panic(fmt.Sprintf("telemetry: metric %q re-registered with label %q, had %q", name, labelKeys[i], f.labelKeys[i]))
			}
		}
		return f
	}
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, k := range labelKeys {
		if !validName(k) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on metric %q", k, name))
		}
	}
	if kind == kindHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending", name))
		}
		buckets = append([]float64(nil), buckets...)
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelKeys: append([]string(nil), labelKeys...),
		buckets:   buckets,
		series:    make(map[string]any),
	}
	r.fams[name] = f
	return f
}

// get returns the series for the encoded label values, creating it when
// missing.
func (f *family) get(key string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = new(Counter)
	case kindGauge:
		m = new(Gauge)
	default:
		m = &Histogram{uppers: f.buckets, counts: make([]uint64, len(f.buckets)+1)}
	}
	f.series[key] = m
	return m
}

// Counter returns the unlabeled counter with the given name, registering
// it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.getFamily(name, help, kindCounter, nil, nil).get("").(*Counter)
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.getFamily(name, help, kindGauge, nil, nil).get("").(*Gauge)
}

// Histogram returns the unlabeled histogram with the given name. buckets
// are the ascending upper bounds (the +Inf bucket is implicit); nil means
// DefBuckets. Buckets are fixed by the first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.getFamily(name, help, kindHistogram, nil, buckets).get("").(*Histogram)
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.getFamily(name, help, kindCounter, labelKeys, nil)}
}

// With returns the counter for the given label values (one per label key,
// in registration order).
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(v.f.encode(labelValues)).(*Counter)
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.getFamily(name, help, kindGauge, labelKeys, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(v.f.encode(labelValues)).(*Gauge)
}

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family with the given name
// and shared buckets (nil means DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.getFamily(name, help, kindHistogram, labelKeys, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(v.f.encode(labelValues)).(*Histogram)
}

// encode joins label values into a series key. Values are length-prefixed
// so no pair of value lists collides.
func (f *family) encode(values []string) string {
	if len(values) != len(f.labelKeys) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labelKeys), len(values)))
	}
	if len(values) == 0 {
		return ""
	}
	var b strings.Builder
	for _, v := range values {
		fmt.Fprintf(&b, "%d:%s", len(v), v)
	}
	return b.String()
}

// validName reports whether s matches the Prometheus metric/label name
// charset [a-zA-Z_][a-zA-Z0-9_]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
