package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "concurrent increments")
	vec := r.CounterVec("test_labeled_total", "labeled concurrent increments", "worker")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := vec.With(string(rune('a' + w)))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				lbl.Add(0.5)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %g, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := vec.With(string(rune('a' + w))).Value(); got != perWorker/2 {
			t.Errorf("labeled counter %d = %g, want %d", w, got, perWorker/2)
		}
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("neg_total", "")
	c.Add(3)
	c.Add(-5)
	c.Add(math.NaN())
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %g, want 3 (negative/NaN adds ignored)", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue_depth", "")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %g, want 7", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{1, 2, 4})
	// A value exactly on an upper bound belongs to that bucket (le is
	// "less than or equal"), values above every bound go to +Inf.
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 4.0001, 100} {
		h.Observe(v)
	}
	uppers, cum := h.Buckets()
	wantUppers := []float64{1, 2, 4, math.Inf(1)}
	wantCum := []uint64{2, 4, 5, 7}
	if len(uppers) != len(wantUppers) {
		t.Fatalf("uppers = %v", uppers)
	}
	for i := range uppers {
		if uppers[i] != wantUppers[i] {
			t.Errorf("upper[%d] = %g, want %g", i, uppers[i], wantUppers[i])
		}
		if cum[i] != wantCum[i] {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], wantCum[i])
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if want := 0.5 + 1 + 1.5 + 2 + 4 + 4.0001 + 100; math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", h.Sum(), want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "", ExponentialBuckets(0.001, 2, 10))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i%7) * 0.01)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestGetOrCreateReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "x")
	b := r.Counter("same_total", "x")
	if a != b {
		t.Error("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("handles do not share state")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("clash_total", "")
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", nil)
	var tr *Tracer
	sp := tr.StartSpan("noop")
	// None of these may panic.
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(-1)
	h.Observe(3)
	sp.SetAttr("k", "v")
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil handles reported non-zero values")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
}

func TestLabelValuesDoNotCollide(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("pair_total", "", "a", "b")
	vec.With("x", "yz").Inc()
	vec.With("xy", "z").Inc()
	if got := vec.With("x", "yz").Value(); got != 1 {
		t.Errorf(`("x","yz") = %g, want 1`, got)
	}
	if got := vec.With("xy", "z").Value(); got != 1 {
		t.Errorf(`("xy","z") = %g, want 1`, got)
	}
}
