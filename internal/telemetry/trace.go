package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one completed span in the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// a "complete" event ("ph":"X") with microsecond timestamp and duration
// relative to the start of the trace.
type Event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds since trace start
	Dur   float64        `json:"dur"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// Tracer records nested spans. Create one with NewTracer; a nil Tracer,
// or one that is disabled, hands out nil Spans whose methods are no-ops,
// so tracing can stay threaded through hot paths at negligible cost.
type Tracer struct {
	mu      sync.Mutex
	enabled bool
	epoch   time.Time
	events  []Event
	depth   int // open spans, for the nesting sanity check in tests
	now     func() time.Time
}

// NewTracer returns an enabled tracer whose timestamps are relative to
// now.
func NewTracer() *Tracer {
	return &Tracer{enabled: true, epoch: time.Now(), now: time.Now}
}

var stdTracer = &Tracer{epoch: time.Now(), now: time.Now} // disabled until asked for

// DefaultTracer returns the package-level tracer. It starts disabled:
// spans cost one nil check until SetEnabled(true) — how the -trace CLI
// flags switch tracing on for code that defaulted to this tracer.
func DefaultTracer() *Tracer { return stdTracer }

// SetEnabled turns span recording on or off. Enabling resets the epoch so
// timestamps start near zero.
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if on && !t.enabled {
		t.epoch = t.now()
	}
	t.enabled = on
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enabled
}

// Span is one in-flight operation. End completes it; SetAttr attaches a
// key/value rendered into the Chrome trace "args". A nil Span is a no-op.
// Spans are safe for concurrent use: a span handle may be shared with the
// worker goroutines of a parallel section that attach attributes while the
// owner ends it.
type Span struct {
	t     *Tracer
	name  string
	start time.Time

	mu    sync.Mutex // guards args and ended
	args  map[string]any
	ended bool
}

// StartSpan opens a span. Nest spans by starting and ending them in LIFO
// order on one goroutine; chrome://tracing infers the hierarchy from the
// containment of [ts, ts+dur] intervals on the same thread lane.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if !t.enabled {
		t.mu.Unlock()
		return nil
	}
	t.depth++
	now := t.now()
	t.mu.Unlock()
	return &Span{t: t, name: name, start: now}
}

// SetAttr attaches an attribute to the span. Values must be
// JSON-serializable (numbers, strings, bools, maps, slices).
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s // attribute arrived after End; the event is already recorded
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = value
	return s
}

// End completes the span and records its event. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	args := s.args
	s.mu.Unlock()
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.now()
	t.depth--
	t.events = append(t.events, Event{
		Name:  s.name,
		Cat:   "idxflow",
		Phase: "X",
		TS:    float64(s.start.Sub(t.epoch)) / float64(time.Microsecond),
		Dur:   float64(end.Sub(s.start)) / float64(time.Microsecond),
		PID:   1,
		TID:   1,
		Args:  args,
	})
}

// Events returns a copy of the recorded events in completion order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len returns the number of completed spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Reset discards all recorded events and restarts the epoch.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = nil
	t.epoch = t.now()
}

// chromeTrace is the JSON object format accepted by chrome://tracing and
// Perfetto.
type chromeTrace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the recorded spans as a Chrome trace-event JSON
// object, loadable directly in chrome://tracing or https://ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteJSONL writes one event per line — convenient for grep/jq pipelines.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadChromeTrace parses a trace written by WriteChromeTrace. It also
// accepts the bare-array variant of the format.
func ReadChromeTrace(r io.Reader) ([]Event, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var obj chromeTrace
	if err := json.Unmarshal(data, &obj); err == nil && obj.TraceEvents != nil {
		return obj.TraceEvents, nil
	}
	var arr []Event
	if err := json.Unmarshal(data, &arr); err != nil {
		return nil, fmt.Errorf("telemetry: not a chrome trace: %w", err)
	}
	return arr, nil
}
