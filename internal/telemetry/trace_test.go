package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed amount per reading so span durations are
// deterministic.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func newFakeTracer(step time.Duration) *Tracer {
	c := &fakeClock{t: time.Unix(1000, 0), step: step}
	tr := &Tracer{enabled: true, now: c.now}
	tr.epoch = c.t
	return tr
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := newFakeTracer(time.Millisecond)
	outer := tr.StartSpan("service.submit").SetAttr("flow", "f1")
	inner := tr.StartSpan("sched.skyline").SetAttr("ops", 12)
	inner.End()
	outer.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	// Completion order: inner first.
	in, out := events[0], events[1]
	if in.Name != "sched.skyline" || out.Name != "service.submit" {
		t.Fatalf("names = %q, %q", in.Name, out.Name)
	}
	if in.Phase != "X" || out.Phase != "X" {
		t.Errorf("phases = %q, %q, want X", in.Phase, out.Phase)
	}
	// Nesting: the inner span's [ts, ts+dur] lies inside the outer's.
	if in.TS < out.TS || in.TS+in.Dur > out.TS+out.Dur {
		t.Errorf("inner span [%g,%g] not inside outer [%g,%g]",
			in.TS, in.TS+in.Dur, out.TS, out.TS+out.Dur)
	}
	if out.Args["flow"] != "f1" {
		t.Errorf("outer args = %v", out.Args)
	}
	if in.Args["ops"] != float64(12) { // JSON numbers decode as float64
		t.Errorf("inner args = %v", in.Args)
	}
}

func TestReadChromeTraceBareArray(t *testing.T) {
	events, err := ReadChromeTrace(strings.NewReader(
		`[{"name":"a","ph":"X","ts":1,"dur":2,"pid":1,"tid":1}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Name != "a" {
		t.Errorf("events = %+v", events)
	}
}

func TestReadChromeTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadChromeTrace(strings.NewReader("not json")); err == nil {
		t.Error("garbage parsed as a trace")
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := &Tracer{now: time.Now}
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Error("disabled tracer returned a live span")
	}
	sp.SetAttr("k", 1)
	sp.End()
	if tr.Len() != 0 {
		t.Errorf("events = %d, want 0", tr.Len())
	}
	tr.SetEnabled(true)
	tr.StartSpan("y").End()
	if tr.Len() != 1 {
		t.Errorf("events after enable = %d, want 1", tr.Len())
	}
}

func TestJSONL(t *testing.T) {
	tr := newFakeTracer(time.Millisecond)
	tr.StartSpan("a").End()
	tr.StartSpan("b").End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
}

func TestEndTwiceIsNoOp(t *testing.T) {
	tr := newFakeTracer(time.Millisecond)
	sp := tr.StartSpan("once")
	sp.End()
	sp.End()
	if tr.Len() != 1 {
		t.Errorf("events = %d, want 1", tr.Len())
	}
}

func TestTracerReset(t *testing.T) {
	tr := newFakeTracer(time.Millisecond)
	tr.StartSpan("a").End()
	tr.Reset()
	if tr.Len() != 0 {
		t.Errorf("events after reset = %d", tr.Len())
	}
}

func TestSpanConcurrentSetAttr(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartSpan("parallel")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp.SetAttr(fmt.Sprintf("k%d", w), i)
			}
		}()
	}
	wg.Wait()
	sp.End()
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	if len(events[0].Args) != 8 {
		t.Errorf("args = %d, want 8", len(events[0].Args))
	}
}

func TestSpanSetAttrAfterEndIsNoOp(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartSpan("late")
	sp.SetAttr("early", 1)
	sp.End()
	sp.SetAttr("late", 2) // must not race with the recorded event's Args
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	if _, ok := events[0].Args["late"]; ok {
		t.Error("attribute set after End leaked into the recorded event")
	}
}
