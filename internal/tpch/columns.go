package tpch

// Columns is the struct-of-arrays (columnar) form of a lineitem batch: one
// slice per column, all the same length, where position i across the slices
// is row i. Vectorized operators in internal/exec process these slices in
// blocks instead of walking []Row one struct at a time, and the columnar
// page layout in internal/pagestore persists the fixed-width columns as
// packed value runs.
type Columns struct {
	OrderKey      []int64
	CommitDate    []int32
	ShipInstruct  []uint8
	Comment       []string
	Quantity      []int32
	ExtendedPrice []float64
}

// Len returns the number of rows held.
func (c *Columns) Len() int { return len(c.OrderKey) }

// Grow preallocates capacity for n more rows in every column.
func (c *Columns) Grow(n int) {
	grow := func(have, want int) bool { return want > have }
	if grow(cap(c.OrderKey)-len(c.OrderKey), n) {
		c.OrderKey = append(make([]int64, 0, len(c.OrderKey)+n), c.OrderKey...)
		c.CommitDate = append(make([]int32, 0, len(c.CommitDate)+n), c.CommitDate...)
		c.ShipInstruct = append(make([]uint8, 0, len(c.ShipInstruct)+n), c.ShipInstruct...)
		c.Comment = append(make([]string, 0, len(c.Comment)+n), c.Comment...)
		c.Quantity = append(make([]int32, 0, len(c.Quantity)+n), c.Quantity...)
		c.ExtendedPrice = append(make([]float64, 0, len(c.ExtendedPrice)+n), c.ExtendedPrice...)
	}
}

// Append adds one row to every column.
func (c *Columns) Append(r Row) {
	c.OrderKey = append(c.OrderKey, r.OrderKey)
	c.CommitDate = append(c.CommitDate, r.CommitDate)
	c.ShipInstruct = append(c.ShipInstruct, r.ShipInstruct)
	c.Comment = append(c.Comment, r.Comment)
	c.Quantity = append(c.Quantity, r.Quantity)
	c.ExtendedPrice = append(c.ExtendedPrice, r.ExtendedPrice)
}

// Row reassembles row i from the column slices.
func (c *Columns) Row(i int) Row {
	return Row{
		OrderKey:      c.OrderKey[i],
		CommitDate:    c.CommitDate[i],
		ShipInstruct:  c.ShipInstruct[i],
		Comment:       c.Comment[i],
		Quantity:      c.Quantity[i],
		ExtendedPrice: c.ExtendedPrice[i],
	}
}

// Rows converts the columnar batch back to row form.
func (c *Columns) Rows() []Row {
	out := make([]Row, c.Len())
	for i := range out {
		out[i] = c.Row(i)
	}
	return out
}

// ColumnsFromRows converts a row batch to columnar form with exactly-sized
// column slices.
func ColumnsFromRows(rows []Row) Columns {
	c := Columns{
		OrderKey:      make([]int64, len(rows)),
		CommitDate:    make([]int32, len(rows)),
		ShipInstruct:  make([]uint8, len(rows)),
		Comment:       make([]string, len(rows)),
		Quantity:      make([]int32, len(rows)),
		ExtendedPrice: make([]float64, len(rows)),
	}
	for i, r := range rows {
		c.OrderKey[i] = r.OrderKey
		c.CommitDate[i] = r.CommitDate
		c.ShipInstruct[i] = r.ShipInstruct
		c.Comment[i] = r.Comment
		c.Quantity[i] = r.Quantity
		c.ExtendedPrice[i] = r.ExtendedPrice
	}
	return c
}

// GenerateColumns returns the same dataset as Generate for the given scale
// and seed, already in columnar form, without materializing the []Row
// intermediate.
func GenerateColumns(scale float64, seed int64) Columns {
	var c Columns
	c.Grow(int(float64(RowsPerScale)*scale) + 7)
	GenerateEach(scale, seed, func(r Row) { c.Append(r) })
	return c
}
