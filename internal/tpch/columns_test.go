package tpch

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestGenerateColumnsMatchesGenerate proves the streaming columnar
// generator emits exactly the dataset of the row generator for the same
// (scale, seed).
func TestGenerateColumnsMatchesGenerate(t *testing.T) {
	rows := Generate(0.001, 17)
	cols := GenerateColumns(0.001, 17)
	if cols.Len() != len(rows) {
		t.Fatalf("columns len %d, rows len %d", cols.Len(), len(rows))
	}
	if !reflect.DeepEqual(cols.Rows(), rows) {
		t.Fatal("GenerateColumns dataset differs from Generate")
	}
	if !reflect.DeepEqual(ColumnsFromRows(rows), cols) {
		t.Fatal("ColumnsFromRows(Generate) differs from GenerateColumns")
	}
}

// TestColumnsRoundTripProperty round-trips random row batches through the
// columnar form exactly: Columns ↔ []Row must be lossless for every field.
func TestColumnsRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([]Row, int(n))
		for i := range rows {
			rows[i] = Row{
				OrderKey:      rng.Int63() - rng.Int63(),
				CommitDate:    int32(rng.Int31() - rng.Int31()),
				ShipInstruct:  uint8(rng.Intn(256)),
				Comment:       randComment(rng),
				Quantity:      rng.Int31(),
				ExtendedPrice: rng.NormFloat64() * 1e6,
			}
		}
		back := ColumnsFromRows(rows)
		return reflect.DeepEqual(back.Rows(), rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestColumnsAppendRow checks the incremental Append/Row accessors agree
// with the batch converters.
func TestColumnsAppendRow(t *testing.T) {
	rows := Generate(0.0002, 5)
	var c Columns
	c.Grow(len(rows))
	for _, r := range rows {
		c.Append(r)
	}
	for i, r := range rows {
		if c.Row(i) != r {
			t.Fatalf("row %d differs after Append: %+v vs %+v", i, c.Row(i), r)
		}
	}
	if !reflect.DeepEqual(c, ColumnsFromRows(rows)) {
		t.Fatal("Append-built columns differ from ColumnsFromRows")
	}
}

// TestGenerateEachStreams checks the streaming generator visits rows in
// Generate order without buffering.
func TestGenerateEachStreams(t *testing.T) {
	want := Generate(0.0005, 9)
	i := 0
	GenerateEach(0.0005, 9, func(r Row) {
		if i < len(want) && want[i] != r {
			t.Fatalf("row %d differs: %+v vs %+v", i, r, want[i])
		}
		i++
	})
	if i != len(want) {
		t.Fatalf("streamed %d rows, want %d", i, len(want))
	}
}
