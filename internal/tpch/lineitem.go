// Package tpch provides a synthetic stand-in for the TPC-H lineitem table
// used in §6.1 of the paper to size indexes (Table 5) and measure index
// speedups (Table 6). The official dbgen tool and its data are not
// available offline, so this package generates rows with the same schema,
// key distribution (orders with 1-7 lineitems) and column widths; the
// asymptotic behaviour of access paths — which is what the speedups measure
// — is preserved.
package tpch

import (
	"math/rand"

	"idxflow/internal/data"
)

// RowsPerScale is the approximate number of lineitem rows per TPC-H scale
// factor (the paper uses scale 2 with "approximately 12 million rows").
const RowsPerScale = 6_000_000

// OrdersPerScale is the number of orders per scale factor; each order has
// 1-7 lineitems, averaging 4.
const OrdersPerScale = 1_500_000

// ShipInstructs are the four possible lineitem shipping instructions.
var ShipInstructs = [4]string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

// Row is one lineitem row, carrying the columns that Table 5 indexes plus a
// couple of measure columns used by the executor's aggregations.
type Row struct {
	OrderKey      int64
	CommitDate    int32 // days since 1992-01-01, spanning ~7 years
	ShipInstruct  uint8 // index into ShipInstructs
	Comment       string
	Quantity      int32
	ExtendedPrice float64
}

// CommitDateDays is the range of commit dates in days.
const CommitDateDays = 7 * 365

// Generate returns approximately RowsPerScale*scale rows, deterministically
// from the seed. Order keys are assigned like TPC-H: dense order numbers,
// each with 1-7 lineitems.
func Generate(scale float64, seed int64) []Row {
	target := int(float64(RowsPerScale) * scale)
	rows := make([]Row, 0, target+7)
	GenerateEach(scale, seed, func(r Row) { rows = append(rows, r) })
	return rows
}

// GenerateEach streams the rows Generate would return, in the same order,
// to emit — the bounded-memory form used when the dataset is loaded
// straight into disk-backed storage at scales where []Row would not fit.
func GenerateEach(scale float64, seed int64, emit func(Row)) {
	rng := rand.New(rand.NewSource(seed))
	target := int(float64(RowsPerScale) * scale)
	generated := 0
	var orderKey int64
	for generated < target {
		orderKey++
		lines := 1 + rng.Intn(7)
		for l := 0; l < lines; l++ {
			emit(Row{
				OrderKey:      orderKey,
				CommitDate:    int32(rng.Intn(CommitDateDays)),
				ShipInstruct:  uint8(rng.Intn(len(ShipInstructs))),
				Comment:       randComment(rng),
				Quantity:      int32(1 + rng.Intn(50)),
				ExtendedPrice: 900 + rng.Float64()*104000,
			})
			generated++
		}
	}
}

var commentWords = []string{
	"carefully", "final", "deposits", "sleep", "furiously", "quickly",
	"regular", "requests", "ironic", "packages", "bold", "accounts",
	"express", "pending", "theodolites", "across", "slyly", "special",
}

// randComment builds a TPC-H-flavoured comment averaging ~27 characters
// (the average width behind Table 5's comment index size).
func randComment(rng *rand.Rand) string {
	n := 2 + rng.Intn(4) // 2-5 words
	var b []byte
	for i := 0; i < n; i++ {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, commentWords[rng.Intn(len(commentWords))]...)
	}
	return string(b)
}

// Column average widths in bytes, chosen so the analytic index sizes of
// internal/data reproduce Table 5 of the paper: a 4-byte integer orderkey,
// 10-to-11-char date strings, the average of the four ship instructions,
// and ~27-char comments, over a ~116-byte record.
const (
	orderKeyWidth     = 4.25
	dateWidth         = 10.8
	shipInstructWidth = 12.4
	commentWidth      = 27.2
)

// TableDescriptor returns the data-model descriptor of lineitem at the
// given scale, partitioned so each partition holds at most maxPartMB of
// data (the paper uses 128 MB file partitions, §6.1).
func TableDescriptor(scale float64, maxPartMB float64) *data.Table {
	t := data.NewTable("lineitem",
		data.Column{Name: "orderkey", Type: "integer", AvgSize: orderKeyWidth},
		data.Column{Name: "partkey", Type: "integer", AvgSize: 4},
		data.Column{Name: "suppkey", Type: "integer", AvgSize: 4},
		data.Column{Name: "linenumber", Type: "integer", AvgSize: 4},
		data.Column{Name: "quantity", Type: "decimal", AvgSize: 4},
		data.Column{Name: "extendedprice", Type: "decimal", AvgSize: 8},
		data.Column{Name: "discount", Type: "decimal", AvgSize: 4},
		data.Column{Name: "tax", Type: "decimal", AvgSize: 4},
		data.Column{Name: "returnflag", Type: "char(1)", AvgSize: 1},
		data.Column{Name: "linestatus", Type: "char(1)", AvgSize: 1},
		data.Column{Name: "shipdate", Type: "date", AvgSize: dateWidth},
		data.Column{Name: "commitdate", Type: "date", AvgSize: dateWidth},
		data.Column{Name: "receiptdate", Type: "date", AvgSize: dateWidth},
		data.Column{Name: "shipinstruct", Type: "char(25)", AvgSize: shipInstructWidth},
		data.Column{Name: "shipmode", Type: "char(10)", AvgSize: 4.3},
		data.Column{Name: "comment", Type: "varchar(44)", AvgSize: commentWidth},
	)
	totalRows := int64(float64(RowsPerScale) * scale)
	if maxPartMB <= 0 {
		maxPartMB = 128
	}
	rowsPerPart := int64(maxPartMB * 1e6 / t.RecordSize())
	if rowsPerPart < 1 {
		rowsPerPart = 1
	}
	for remaining := totalRows; remaining > 0; {
		n := rowsPerPart
		if remaining < n {
			n = remaining
		}
		t.AddPartition(n, "")
		remaining -= n
	}
	return t
}
