package tpch

import (
	"math"
	"testing"

	"idxflow/internal/data"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.001, 7)
	b := Generate(0.001, 7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Generate(0.001, 8)
	same := len(a) == len(c)
	if same {
		diff := false
		for i := range a {
			if a[i] != c[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical data")
		}
	}
}

func TestGenerateRowCountAndShape(t *testing.T) {
	rows := Generate(0.001, 1)
	want := int(RowsPerScale * 0.001)
	if len(rows) < want || len(rows) > want+7 {
		t.Errorf("len = %d, want in [%d, %d]", len(rows), want, want+7)
	}
	// Order keys are dense and non-decreasing, 1-7 rows each.
	perOrder := make(map[int64]int)
	var prev int64
	for _, r := range rows {
		if r.OrderKey < prev {
			t.Fatal("order keys not non-decreasing")
		}
		prev = r.OrderKey
		perOrder[r.OrderKey]++
		if r.CommitDate < 0 || r.CommitDate >= CommitDateDays {
			t.Fatalf("commit date %d out of range", r.CommitDate)
		}
		if int(r.ShipInstruct) >= len(ShipInstructs) {
			t.Fatalf("ship instruct %d out of range", r.ShipInstruct)
		}
		if r.Comment == "" {
			t.Fatal("empty comment")
		}
	}
	var sum, n float64
	for _, c := range perOrder {
		if c < 1 || c > 7 {
			t.Fatalf("order with %d lineitems", c)
		}
		sum += float64(c)
		n++
	}
	if avg := sum / n; avg < 3 || avg > 5 {
		t.Errorf("average lineitems per order = %g, want ~4", avg)
	}
}

func TestCommentWidthMatchesStatistic(t *testing.T) {
	rows := Generate(0.002, 3)
	var total float64
	for _, r := range rows {
		total += float64(len(r.Comment))
	}
	avg := total / float64(len(rows))
	if math.Abs(avg-commentWidth) > 5 {
		t.Errorf("average comment length = %g, want near %g", avg, commentWidth)
	}
}

func TestTableDescriptorMatchesTable5(t *testing.T) {
	// Scale 2: ~12M rows, ~1.4 GB, like the paper.
	tab := TableDescriptor(2, 128)
	if got := tab.NumRecords(); got != 12_000_000 {
		t.Errorf("NumRecords = %d, want 12000000", got)
	}
	sizeGB := tab.SizeMB() / 1024
	if sizeGB < 1.2 || sizeGB > 1.5 {
		t.Errorf("table size = %.2f GB, want ~1.4", sizeGB)
	}
	// Index sizes as % of table size must reproduce the ordering of
	// Table 5: comment > shipinstruct > commitdate > orderkey.
	pct := func(col string) float64 {
		idx, err := data.NewIndex(tab, col)
		if err != nil {
			t.Fatal(err)
		}
		return idx.SizeMB() / tab.SizeMB() * 100
	}
	comment, ship, commit, order := pct("comment"), pct("shipinstruct"), pct("commitdate"), pct("orderkey")
	if !(comment > ship && ship > commit && commit > order) {
		t.Errorf("percentage ordering broken: comment=%.1f ship=%.1f commit=%.1f order=%.1f",
			comment, ship, commit, order)
	}
	// And land near the paper's absolute percentages.
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"comment", comment, 30.16},
		{"shipinstruct", ship, 17.78},
		{"commitdate", commit, 16.13},
		{"orderkey", order, 10.49},
	} {
		if math.Abs(c.got-c.want) > 2.5 {
			t.Errorf("%s index = %.2f%% of table, want ~%.2f%%", c.name, c.got, c.want)
		}
	}
	// Partitions capped at 128 MB.
	for _, p := range tab.Partitions {
		if mb := tab.PartitionSizeMB(p); mb > 128.0001 {
			t.Errorf("partition %d is %.1f MB, want <= 128", p.ID, mb)
		}
	}
}

func TestTableDescriptorDefaultsPartitionSize(t *testing.T) {
	tab := TableDescriptor(0.01, 0)
	if len(tab.Partitions) == 0 {
		t.Fatal("no partitions")
	}
}
