// Package workload generates the synthetic scientific dataflows used in the
// paper's evaluation (§6.1): Montage, LIGO and CyberShake graphs with the
// level structure of Fig. 5 and the operator statistics of Table 4, a
// shared database of input files partitioned at 128 MB, four potential
// indexes per file sized by the Table 5 ratios with speedups drawn from
// Table 6, and Poisson arrival clients in random and phase modes.
//
// The paper produces these dataflows with the Bharathi et al. workflow
// generator, which is not available offline; this package is a faithful
// reimplementation parameterised by the published statistics.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"idxflow/internal/dataflow"
)

// App identifies one of the three scientific applications.
type App int

// The applications of §6.1.
const (
	Montage App = iota
	Ligo
	Cybershake
)

var appNames = [...]string{"montage", "ligo", "cybershake"}

func (a App) String() string {
	if a < 0 || int(a) >= len(appNames) {
		return fmt.Sprintf("app(%d)", int(a))
	}
	return appNames[a]
}

// Apps lists all applications.
var Apps = []App{Montage, Ligo, Cybershake}

// Stats are the published Table 4 targets for one application.
type Stats struct {
	Ops                           int
	MinT, MaxT, MeanT, StdevT     float64 // operator runtimes, seconds
	Files                         int
	MinMB, MaxMB, MeanMB, StdevMB float64 // input file sizes
}

// Table4 returns the paper's Table 4 statistics for app.
func Table4(app App) Stats {
	switch app {
	case Montage:
		return Stats{Ops: 100, MinT: 3.82, MaxT: 49.32, MeanT: 11.32, StdevT: 2.95,
			Files: 20, MinMB: 0.01, MaxMB: 4.02, MeanMB: 3.22, StdevMB: 1.65}
	case Ligo:
		return Stats{Ops: 100, MinT: 4.03, MaxT: 689.39, MeanT: 222.33, StdevT: 241.42,
			Files: 53, MinMB: 0.86, MaxMB: 14.91, MeanMB: 14.24, StdevMB: 2.70}
	default:
		return Stats{Ops: 100, MinT: 0.55, MaxT: 199.43, MeanT: 22.97, StdevT: 25.08,
			Files: 52, MinMB: 1.81, MaxMB: 19169.75, MeanMB: 1459.08, StdevMB: 5091.69}
	}
}

// truncNorm draws from N(mean, sd) truncated to [lo, hi].
func truncNorm(rng *rand.Rand, mean, sd, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		v := rng.NormFloat64()*sd + mean
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(math.Max(mean, lo), hi)
}

// opSpec is one operator type of an application level.
type opSpec struct {
	name     string
	kind     dataflow.Kind
	mean, sd float64
	lo, hi   float64
}

func (s opSpec) sample(rng *rand.Rand) float64 {
	return truncNorm(rng, s.mean, s.sd, s.lo, s.hi)
}

// Generator builds dataflow graphs and flows.
type Generator struct {
	rng *rand.Rand
	db  *FileDB
}

// NewGenerator returns a generator over db seeded deterministically.
func NewGenerator(db *FileDB, seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), db: db}
}

// connect panics on Connect errors: generation is structural, so an error
// is a programming bug, not an input condition.
func connect(g *dataflow.Graph, from, to dataflow.OpID, size float64) {
	if err := g.Connect(from, to, size); err != nil {
		panic(err)
	}
}

// Graph generates a fresh ~100-operator graph of the given application,
// returning the graph and its level-0 reader operators.
func (gen *Generator) Graph(app App) (*dataflow.Graph, []dataflow.OpID) {
	switch app {
	case Montage:
		return gen.montage()
	case Ligo:
		return gen.ligo()
	default:
		return gen.cybershake()
	}
}

// montage builds the Fig. 5A shape: a wide projection level, a pairwise
// difference-fit level, two serial fitting ops, a background level joined
// back to the projections, and a serial aggregation tail. ~100 ops, mean
// runtime ~11 s with a slow mAdd tail op (Table 4: max 49.32).
func (gen *Generator) montage() (*dataflow.Graph, []dataflow.OpID) {
	rng := gen.rng
	g := dataflow.New()
	project := opSpec{"mProject", dataflow.KindProcess, 10.5, 2.0, 3.82, 20}
	diff := opSpec{"mDiffFit", dataflow.KindJoin, 10.0, 1.8, 3.82, 20}
	concat := opSpec{"mConcatFit", dataflow.KindAggregate, 14, 2, 5, 25}
	bg := opSpec{"mBgModel", dataflow.KindProcess, 20, 3, 8, 35}
	back := opSpec{"mBackground", dataflow.KindProcess, 11, 2, 3.82, 20}
	imgtbl := opSpec{"mImgtbl", dataflow.KindGroup, 12, 2, 4, 25}
	add := opSpec{"mAdd", dataflow.KindAggregate, 45, 3, 30, 49.32}
	shrink := opSpec{"mShrink", dataflow.KindProcess, 12, 2, 4, 25}

	const nProj = 20
	edge := func() float64 { return 0.5 + rng.Float64()*3.5 } // MB

	var projs []dataflow.OpID
	for i := 0; i < nProj; i++ {
		projs = append(projs, g.Add(dataflow.Operator{
			Name: project.name, Kind: project.kind, CPU: 1, Memory: 0.25,
			Time: project.sample(rng),
		}))
	}
	var diffs []dataflow.OpID
	for i := 0; i < 38; i++ {
		d := g.Add(dataflow.Operator{Name: diff.name, Kind: diff.kind, CPU: 1, Memory: 0.25, Time: diff.sample(rng)})
		a := projs[i%nProj]
		b := projs[(i+1)%nProj]
		connect(g, a, d, edge())
		connect(g, b, d, edge())
		diffs = append(diffs, d)
	}
	cf := g.Add(dataflow.Operator{Name: concat.name, Kind: concat.kind, CPU: 1, Memory: 0.25, Time: concat.sample(rng)})
	for _, d := range diffs {
		connect(g, d, cf, edge())
	}
	bgm := g.Add(dataflow.Operator{Name: bg.name, Kind: bg.kind, CPU: 1, Memory: 0.25, Time: bg.sample(rng)})
	connect(g, cf, bgm, edge())
	var backs []dataflow.OpID
	for i := 0; i < nProj; i++ {
		b := g.Add(dataflow.Operator{Name: back.name, Kind: back.kind, CPU: 1, Memory: 0.25, Time: back.sample(rng)})
		connect(g, bgm, b, edge())
		connect(g, projs[i], b, edge())
		backs = append(backs, b)
	}
	it := g.Add(dataflow.Operator{Name: imgtbl.name, Kind: imgtbl.kind, CPU: 1, Memory: 0.25, Time: imgtbl.sample(rng)})
	for _, b := range backs {
		connect(g, b, it, edge())
	}
	ad := g.Add(dataflow.Operator{Name: add.name, Kind: add.kind, CPU: 1, Memory: 0.5, Time: add.sample(rng)})
	connect(g, it, ad, 2+rng.Float64()*2)
	// Parallel shrink level (one per tile) feeding a final JPEG op.
	jpeg := g.Add(dataflow.Operator{Name: "mJPEG", Kind: dataflow.KindProcess, CPU: 1, Memory: 0.25, Time: shrink.sample(rng)})
	for i := 0; i < 17; i++ {
		sOp := g.Add(dataflow.Operator{Name: shrink.name, Kind: shrink.kind, CPU: 1, Memory: 0.25, Time: shrink.sample(rng)})
		connect(g, ad, sOp, edge())
		connect(g, sOp, jpeg, edge())
	}
	return g, projs
}

// ligo builds the Fig. 5B inspiral shape: template banks feeding matched
// filters one-to-one, coincidence stages aggregating groups, and a second
// filtering pass. The Inspiral operators dominate the runtime (Table 4:
// mean 222 s, stdev 241, max 689).
func (gen *Generator) ligo() (*dataflow.Graph, []dataflow.OpID) {
	rng := gen.rng
	g := dataflow.New()
	tmplt := opSpec{"TmpltBank", dataflow.KindProcess, 55, 15, 4.03, 110}
	insp := opSpec{"Inspiral", dataflow.KindProcess, 440, 130, 100, 689.39}
	thinca := opSpec{"Thinca", dataflow.KindGroup, 8, 3, 4.03, 20}
	trig := opSpec{"TrigBank", dataflow.KindRangeSelect, 9, 3, 4.03, 20}

	const nBank = 25
	edge := func() float64 { return 5 + rng.Float64()*10 }

	var banks, insp1 []dataflow.OpID
	for i := 0; i < nBank; i++ {
		banks = append(banks, g.Add(dataflow.Operator{Name: tmplt.name, Kind: tmplt.kind, CPU: 1, Memory: 0.25, Time: tmplt.sample(rng)}))
	}
	for i := 0; i < nBank; i++ {
		in := g.Add(dataflow.Operator{Name: insp.name, Kind: insp.kind, CPU: 1, Memory: 0.5, Time: insp.sample(rng)})
		connect(g, banks[i], in, edge())
		insp1 = append(insp1, in)
	}
	var thincas []dataflow.OpID
	for i := 0; i < 5; i++ {
		th := g.Add(dataflow.Operator{Name: thinca.name, Kind: thinca.kind, CPU: 1, Memory: 0.25, Time: thinca.sample(rng)})
		for j := 0; j < 5; j++ {
			connect(g, insp1[i*5+j], th, edge())
		}
		thincas = append(thincas, th)
	}
	// TrigBank operators re-read the template data from storage (they are
	// range selects over the banks), so they count as readers too and
	// their indexes accelerate the second Inspiral stage.
	var trigs, insp2 []dataflow.OpID
	for i := 0; i < 20; i++ {
		tb := g.Add(dataflow.Operator{Name: trig.name, Kind: trig.kind, CPU: 1, Memory: 0.25, Time: trig.sample(rng)})
		connect(g, thincas[i%5], tb, edge())
		trigs = append(trigs, tb)
	}
	for i := 0; i < 20; i++ {
		in := g.Add(dataflow.Operator{Name: insp.name, Kind: insp.kind, CPU: 1, Memory: 0.5, Time: insp.sample(rng)})
		connect(g, trigs[i], in, edge())
		insp2 = append(insp2, in)
	}
	for i := 0; i < 5; i++ {
		th := g.Add(dataflow.Operator{Name: thinca.name, Kind: thinca.kind, CPU: 1, Memory: 0.25, Time: thinca.sample(rng)})
		for j := 0; j < 4; j++ {
			connect(g, insp2[i*4+j], th, edge())
		}
	}
	return g, append(banks, trigs...)
}

// cybershake builds the Fig. 5C shape: a couple of strain-tensor
// extractions fanning out to many seismogram syntheses, each followed by a
// peak-value calculation, aggregated by zip operators. Input data is huge
// (Table 4: mean file 1.46 GB), so edges carry hundreds of MB — the
// data-intensive case of Fig. 7.
func (gen *Generator) cybershake() (*dataflow.Graph, []dataflow.OpID) {
	rng := gen.rng
	g := dataflow.New()
	sgt := opSpec{"ExtractSGT", dataflow.KindRangeSelect, 150, 30, 60, 199.43}
	synth := opSpec{"SeismogramSynthesis", dataflow.KindProcess, 28, 18, 0.55, 150}
	peak := opSpec{"PeakValCalc", dataflow.KindLookup, 1.5, 0.8, 0.55, 5}
	zip := opSpec{"ZipSeis", dataflow.KindAggregate, 40, 10, 10, 80}

	bigEdge := func() float64 { return 100 + rng.Float64()*400 } // MB
	smallEdge := func() float64 { return 0.5 + rng.Float64()*2 }

	var sgts []dataflow.OpID
	for i := 0; i < 2; i++ {
		sgts = append(sgts, g.Add(dataflow.Operator{Name: sgt.name, Kind: sgt.kind, CPU: 1, Memory: 0.5, Time: sgt.sample(rng)}))
	}
	var synths, peaks []dataflow.OpID
	const nSynth = 47
	for i := 0; i < nSynth; i++ {
		sy := g.Add(dataflow.Operator{Name: synth.name, Kind: synth.kind, CPU: 1, Memory: 0.5, Time: synth.sample(rng)})
		connect(g, sgts[i%2], sy, bigEdge())
		synths = append(synths, sy)
	}
	for i := 0; i < nSynth; i++ {
		pk := g.Add(dataflow.Operator{Name: peak.name, Kind: peak.kind, CPU: 1, Memory: 0.25, Time: peak.sample(rng)})
		connect(g, synths[i], pk, smallEdge())
		peaks = append(peaks, pk)
	}
	zs := g.Add(dataflow.Operator{Name: zip.name, Kind: zip.kind, CPU: 1, Memory: 0.5, Time: zip.sample(rng)})
	zp := g.Add(dataflow.Operator{Name: "ZipPSA", Kind: zip.kind, CPU: 1, Memory: 0.5, Time: zip.sample(rng)})
	for i := 0; i < nSynth; i++ {
		connect(g, synths[i], zs, smallEdge())
		connect(g, peaks[i], zp, smallEdge())
	}
	final := g.Add(dataflow.Operator{Name: "Aggregate", Kind: dataflow.KindAggregate, CPU: 1, Memory: 0.25, Time: 10 + rng.Float64()*10})
	connect(g, zs, final, smallEdge())
	connect(g, zp, final, smallEdge())
	return g, sgts
}
