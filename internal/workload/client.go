package workload

import (
	"fmt"
	"math"
	"strings"

	"idxflow/internal/dataflow"
)

// Flow generates a complete dataflow of the given application issued at
// issuedAt seconds: the graph, the input partitions its readers consume,
// and the potential indexes with per-operator speedups drawn from Table 6.
func (gen *Generator) Flow(app App, seq int, issuedAt float64) *dataflow.Flow {
	g, readers := gen.Graph(app)
	files := gen.db.ByApp(app)
	flow := &dataflow.Flow{
		Name:     fmt.Sprintf("%s-%d", app, seq),
		Graph:    g,
		IssuedAt: issuedAt,
	}
	speedupOf := make(map[string]float64) // per (flow, index), drawn once
	useOps := make(map[string]map[dataflow.OpID]float64)
	seenInput := make(map[string]bool)
	assigned := make(map[dataflow.OpID]bool) // successors claimed by an index

	for i, r := range readers {
		f := files[i%len(files)]
		op := g.Op(r)
		// Readers consume a few partitions of their file.
		parts := f.Table.Partitions
		nReads := len(parts)
		if nReads > 4 {
			nReads = 4
		}
		start := 0
		if len(parts) > nReads {
			start = gen.rng.Intn(len(parts) - nReads + 1)
		}
		for _, p := range parts[start : start+nReads] {
			op.Reads = append(op.Reads, p.Path)
			if !seenInput[p.Path] {
				seenInput[p.Path] = true
				flow.Inputs = append(flow.Inputs, p.Path)
			}
		}
		// The reader represents a query over one column: one of the
		// file's four potential indexes can accelerate it. Downstream
		// operators consuming the reader's partitions benefit too (in
		// Fig. 2a both Q1 and Q2 use the partition's index), so the index
		// is associated with the reader and its immediate successors —
		// each operator with at most one index. Queries over a dataset
		// tend to filter on the same hot column, so 90% of readers pick
		// the file's primary column and the rest draw uniformly.
		choice := (i*7 + 3) % len(f.Indexes) // stable per-file primary column
		if gen.rng.Float64() < 0.1 {
			choice = gen.rng.Intn(len(f.Indexes))
		}
		idx := f.Indexes[choice]
		name := idx.Name()
		s, ok := speedupOf[name]
		if !ok {
			s = Table6Speedups[gen.rng.Intn(len(Table6Speedups))]
			speedupOf[name] = s
		}
		if useOps[name] == nil {
			useOps[name] = make(map[dataflow.OpID]float64)
		}
		useOps[name][r] = s
		// The index accelerates every downstream operator that consumes
		// data derived from the indexed partitions (all five §1 operator
		// categories benefit); each operator is claimed by one index.
		stack := []dataflow.OpID{r}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Out(n) {
				if assigned[e.To] {
					continue
				}
				assigned[e.To] = true
				useOps[name][e.To] = s
				stack = append(stack, e.To)
			}
		}
	}
	for name, ops := range useOps {
		flow.Indexes = append(flow.Indexes, dataflow.IndexUse{Index: name, Speedup: ops})
	}
	// Deterministic order for reproducibility.
	sortIndexUses(flow.Indexes)
	return flow
}

func sortIndexUses(uses []dataflow.IndexUse) {
	for i := 1; i < len(uses); i++ {
		for j := i; j > 0 && uses[j].Index < uses[j-1].Index; j-- {
			uses[j], uses[j-1] = uses[j-1], uses[j]
		}
	}
}

// PoissonNext samples a Poisson(lambda)-distributed inter-arrival gap (the
// paper's Dataflow Generator Client computes the arrival time of the next
// dataflow as Pr(X=k) = λ^k e^-λ / k!, with λ = 60 seconds).
func (gen *Generator) PoissonNext(lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	// Knuth's method; λ=60 keeps e^-λ (≈1e-27) comfortably in float64.
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= gen.rng.Float64()
		if p <= l {
			return float64(k)
		}
		k++
	}
}

// Phase is one segment of the phase workload: dataflows of one application
// for a duration in seconds.
type Phase struct {
	App     App
	Seconds float64
}

// DefaultPhases returns the §6.1 phase schedule: CyberShake for 10000 s,
// LIGO for 5000 s, Montage for 20000 s, CyberShake again for 8200 s — in
// total 43200 s = 720 quanta.
func DefaultPhases() []Phase {
	return []Phase{
		{Cybershake, 10000},
		{Ligo, 5000},
		{Montage, 20000},
		{Cybershake, 8200},
	}
}

// PhaseWorkload generates Poisson arrivals over the phase schedule: each
// arrival's application is determined by the phase containing its arrival
// time. lambda is the mean inter-arrival gap in seconds.
func (gen *Generator) PhaseWorkload(phases []Phase, lambda float64) []*dataflow.Flow {
	var total float64
	for _, p := range phases {
		total += p.Seconds
	}
	appAt := func(t float64) App {
		var acc float64
		for _, p := range phases {
			acc += p.Seconds
			if t < acc {
				return p.App
			}
		}
		return phases[len(phases)-1].App
	}
	var flows []*dataflow.Flow
	t := gen.PoissonNext(lambda)
	for seq := 0; t < total; seq++ {
		flows = append(flows, gen.Flow(appAt(t), seq, t))
		t += gen.PoissonNext(lambda)
	}
	return flows
}

// RandomWorkload generates Poisson arrivals for total seconds, choosing the
// application uniformly at random per dataflow (§6.5.2).
func (gen *Generator) RandomWorkload(total, lambda float64) []*dataflow.Flow {
	var flows []*dataflow.Flow
	t := gen.PoissonNext(lambda)
	for seq := 0; t < total; seq++ {
		app := Apps[gen.rng.Intn(len(Apps))]
		flows = append(flows, gen.Flow(app, seq, t))
		t += gen.PoissonNext(lambda)
	}
	return flows
}

// MeasuredStats computes the Table 4-style statistics of a set of flows of
// one application: operator runtimes and input file sizes.
func MeasuredStats(db *FileDB, flows []*dataflow.Flow) Stats {
	var st Stats
	st.MinT = math.Inf(1)
	var sumT, sumT2 float64
	n := 0
	for _, f := range flows {
		for _, id := range f.Graph.Ops() {
			op := f.Graph.Op(id)
			if op.Optional {
				continue
			}
			st.Ops++
			n++
			sumT += op.Time
			sumT2 += op.Time * op.Time
			if op.Time < st.MinT {
				st.MinT = op.Time
			}
			if op.Time > st.MaxT {
				st.MaxT = op.Time
			}
		}
	}
	if n > 0 {
		st.MeanT = sumT / float64(n)
		st.StdevT = math.Sqrt(math.Max(0, sumT2/float64(n)-st.MeanT*st.MeanT))
		st.Ops /= len(flows)
	}
	// File-size stats over the files of the flows' app.
	if len(flows) > 0 && db != nil {
		var app App
		for _, a := range Apps {
			if strings.HasPrefix(flows[0].Name, a.String()+"-") {
				app = a
			}
		}
		files := db.ByApp(app)
		st.Files = len(files)
		st.MinMB = math.Inf(1)
		var sum, sum2 float64
		for _, f := range files {
			mb := f.SizeMB()
			sum += mb
			sum2 += mb * mb
			if mb < st.MinMB {
				st.MinMB = mb
			}
			if mb > st.MaxMB {
				st.MaxMB = mb
			}
		}
		st.MeanMB = sum / float64(len(files))
		st.StdevMB = math.Sqrt(math.Max(0, sum2/float64(len(files))-st.MeanMB*st.MeanMB))
	}
	return st
}
