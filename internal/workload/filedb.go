package workload

import (
	"fmt"
	"math"
	"math/rand"

	"idxflow/internal/data"
)

// MaxPartitionMB is the maximum file-partition size (§6.1: 128 MB).
const MaxPartitionMB = 128

// Table6Speedups are the measured index speedups of Table 6: order-by,
// large range select, small range select and lookup. Each (dataflow, index)
// pair draws its speedup from these values.
var Table6Speedups = [4]float64{7.44, 94.44, 307.50, 627.14}

// IndexColumns are the four indexed columns of Table 5, reused as the
// potential index per file (§6.1: "Four potential indexes for each file").
var IndexColumns = [4]string{"orderkey", "commitdate", "shipinstruct", "comment"}

// File is one input file of the database: a partitioned table with four
// potential indexes.
type File struct {
	App     App
	Table   *data.Table
	Indexes [4]*data.Index
}

// SizeMB returns the file size.
func (f File) SizeMB() float64 { return f.Table.SizeMB() }

// FileDB is the shared database of dataflow input files (§6.1: 125 files,
// 76.69 GB, 713 partitions of at most 128 MB).
type FileDB struct {
	Catalog *data.Catalog
	Files   []File
	byApp   map[App][]int
}

// fileColumns returns the schema used for every file: the four indexable
// columns of Table 5 plus a payload column bringing the record to a
// lineitem-like width.
func fileColumns() []data.Column {
	return []data.Column{
		{Name: "orderkey", Type: "integer", AvgSize: 4.25},
		{Name: "commitdate", Type: "date", AvgSize: 10.8},
		{Name: "shipinstruct", Type: "char(25)", AvgSize: 12.4},
		{Name: "comment", Type: "varchar(44)", AvgSize: 27.2},
		{Name: "payload", Type: "blob", AvgSize: 61.35},
	}
}

// NewFileDB builds the file database deterministically from seed: per-app
// file counts and size distributions follow Table 4 (CyberShake files are
// heavy-tailed lognormal), partitions are capped at 128 MB, and the four
// potential indexes of every file are registered with the catalog.
func NewFileDB(seed int64) (*FileDB, error) {
	rng := rand.New(rand.NewSource(seed))
	db := &FileDB{Catalog: data.NewCatalog(), byApp: make(map[App][]int)}
	for _, app := range Apps {
		st := Table4(app)
		for i := 0; i < st.Files; i++ {
			sizeMB := fileSizeMB(rng, app, st)
			f, err := db.addFile(app, i, sizeMB)
			if err != nil {
				return nil, err
			}
			db.byApp[app] = append(db.byApp[app], f)
		}
	}
	return db, nil
}

func fileSizeMB(rng *rand.Rand, app App, st Stats) float64 {
	if app == Cybershake {
		// Lognormal heavy tail: median ~200 MB, sigma 2 gives mean ~1.5 GB.
		v := math.Exp(math.Log(200) + rng.NormFloat64()*2)
		return math.Min(math.Max(v, st.MinMB), st.MaxMB)
	}
	return truncNorm(rng, st.MeanMB, st.StdevMB, st.MinMB, st.MaxMB)
}

func (db *FileDB) addFile(app App, i int, sizeMB float64) (int, error) {
	name := fmt.Sprintf("%s/f%02d", app, i)
	t := data.NewTable(name, fileColumns()...)
	recSize := t.RecordSize()
	totalRows := int64(sizeMB * 1e6 / recSize)
	if totalRows < 1 {
		totalRows = 1
	}
	rowsPerPart := int64(MaxPartitionMB * 1e6 / recSize)
	for remaining := totalRows; remaining > 0; {
		n := rowsPerPart
		if remaining < n {
			n = remaining
		}
		t.AddPartition(n, "")
		remaining -= n
	}
	if err := db.Catalog.AddTable(t); err != nil {
		return 0, err
	}
	f := File{App: app, Table: t}
	for ci, col := range IndexColumns {
		idx, err := data.NewIndex(t, col)
		if err != nil {
			return 0, err
		}
		if _, err := db.Catalog.RegisterIndex(idx); err != nil {
			return 0, err
		}
		f.Indexes[ci] = idx
	}
	db.Files = append(db.Files, f)
	return len(db.Files) - 1, nil
}

// ByApp returns the files of an application.
func (db *FileDB) ByApp(app App) []File {
	idx := db.byApp[app]
	out := make([]File, len(idx))
	for i, fi := range idx {
		out[i] = db.Files[fi]
	}
	return out
}

// TotalMB returns the total database size.
func (db *FileDB) TotalMB() float64 {
	var sum float64
	for _, f := range db.Files {
		sum += f.SizeMB()
	}
	return sum
}

// TotalPartitions returns the number of file partitions.
func (db *FileDB) TotalPartitions() int {
	n := 0
	for _, f := range db.Files {
		n += len(f.Table.Partitions)
	}
	return n
}

// IndexByName returns the index descriptor with the given canonical name.
func (db *FileDB) IndexByName(name string) *data.Index {
	st := db.Catalog.State(name)
	if st == nil {
		return nil
	}
	return st.Index
}
