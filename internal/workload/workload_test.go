package workload

import (
	"idxflow/internal/dataflow"
	"math"
	"testing"
)

func newDB(t *testing.T) *FileDB {
	t.Helper()
	db, err := NewFileDB(1)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFileDBShape(t *testing.T) {
	db := newDB(t)
	if got := len(db.Files); got != 125 {
		t.Errorf("files = %d, want 125 (Table 4)", got)
	}
	if got := len(db.ByApp(Montage)); got != 20 {
		t.Errorf("montage files = %d, want 20", got)
	}
	if got := len(db.ByApp(Ligo)); got != 53 {
		t.Errorf("ligo files = %d, want 53", got)
	}
	if got := len(db.ByApp(Cybershake)); got != 52 {
		t.Errorf("cybershake files = %d, want 52", got)
	}
	// §6.1: ~76.69 GB total, 713 partitions. The heavy lognormal tail
	// makes the total noisy, so accept a broad band around the target.
	gb := db.TotalMB() / 1024
	if gb < 20 || gb > 220 {
		t.Errorf("total size = %.1f GB, want the same order as 76.69", gb)
	}
	if p := db.TotalPartitions(); p < 150 {
		t.Errorf("partitions = %d, want several hundred", p)
	}
	// Four indexes per file, all registered.
	if got := len(db.Catalog.IndexNames()); got != 4*125 {
		t.Errorf("registered indexes = %d, want 500", got)
	}
}

func TestFilePartitionsCapped(t *testing.T) {
	db := newDB(t)
	for _, f := range db.Files {
		for _, p := range f.Table.Partitions {
			if mb := f.Table.PartitionSizeMB(p); mb > MaxPartitionMB+0.001 {
				t.Fatalf("%s partition %d = %.1f MB > 128", f.Table.Name, p.ID, mb)
			}
		}
	}
}

func TestGraphShapes(t *testing.T) {
	db := newDB(t)
	gen := NewGenerator(db, 7)
	for _, app := range Apps {
		g, readers := gen.Graph(app)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", app, err)
		}
		if got := g.Len(); got < 90 || got > 110 {
			t.Errorf("%s has %d ops, want ~100 (Table 4)", app, got)
		}
		if len(readers) == 0 {
			t.Errorf("%s has no reader ops", app)
		}
		// Every source of the graph must be a reader (readers may also
		// appear deeper, e.g. LIGO's TrigBank level re-reads storage).
		isReader := make(map[dataflow.OpID]bool)
		for _, r := range readers {
			isReader[r] = true
		}
		for _, src := range g.Sources() {
			if !isReader[src] {
				t.Errorf("%s source %d is not a reader", app, src)
			}
		}
		if len(g.Levels()) < 3 {
			t.Errorf("%s has %d levels, want a layered workflow", app, len(g.Levels()))
		}
	}
}

func TestRuntimeStatsApproximateTable4(t *testing.T) {
	db := newDB(t)
	gen := NewGenerator(db, 3)
	for _, app := range Apps {
		want := Table4(app)
		var sum float64
		var n int
		min, max := math.Inf(1), 0.0
		for trial := 0; trial < 10; trial++ {
			g, _ := gen.Graph(app)
			for _, id := range g.Ops() {
				tm := g.Op(id).Time
				sum += tm
				n++
				if tm < min {
					min = tm
				}
				if tm > max {
					max = tm
				}
			}
		}
		mean := sum / float64(n)
		if mean < want.MeanT*0.5 || mean > want.MeanT*1.8 {
			t.Errorf("%s mean runtime = %.1f, want near %.1f", app, mean, want.MeanT)
		}
		if min < want.MinT*0.5 {
			t.Errorf("%s min runtime %.2f below Table 4 min %.2f", app, min, want.MinT)
		}
		if max > want.MaxT*1.2 {
			t.Errorf("%s max runtime %.1f above Table 4 max %.1f", app, max, want.MaxT)
		}
	}
}

func TestFlowCarriesIndexesAndReads(t *testing.T) {
	db := newDB(t)
	gen := NewGenerator(db, 5)
	f := gen.Flow(Montage, 0, 100)
	if f.Name != "montage-0" || f.IssuedAt != 100 {
		t.Errorf("flow meta = %q @ %g", f.Name, f.IssuedAt)
	}
	if len(f.Inputs) == 0 {
		t.Error("flow has no inputs")
	}
	if len(f.Indexes) == 0 {
		t.Fatal("flow has no potential indexes")
	}
	for _, iu := range f.Indexes {
		if db.IndexByName(iu.Index) == nil {
			t.Errorf("index %q not in catalog", iu.Index)
		}
		for id, s := range iu.Speedup {
			valid := false
			for _, v := range Table6Speedups {
				if s == v {
					valid = true
				}
			}
			if !valid {
				t.Errorf("speedup %g not from Table 6", s)
			}
			if f.Graph.Op(id) == nil {
				t.Errorf("index use references unknown op %d", id)
			}
		}
		if f.TimeSavedBy(iu.Index) <= 0 {
			t.Errorf("index %q saves no time", iu.Index)
		}
	}
}

func TestPoissonNextMean(t *testing.T) {
	db := newDB(t)
	gen := NewGenerator(db, 9)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		v := gen.PoissonNext(60)
		if v < 0 {
			t.Fatal("negative gap")
		}
		sum += v
	}
	mean := sum / n
	if mean < 55 || mean > 65 {
		t.Errorf("Poisson mean = %.1f, want ~60", mean)
	}
}

func TestPhaseWorkload(t *testing.T) {
	db := newDB(t)
	gen := NewGenerator(db, 11)
	flows := gen.PhaseWorkload(DefaultPhases(), 60)
	if len(flows) < 500 || len(flows) > 900 {
		t.Errorf("phase workload = %d flows, want ~720", len(flows))
	}
	// Arrival times are increasing and within [0, 43200).
	var prev float64
	for _, f := range flows {
		if f.IssuedAt < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = f.IssuedAt
	}
	if prev >= 43200 {
		t.Errorf("last arrival %g beyond the 720-quantum horizon", prev)
	}
	// Phases: flows before 10000 s are cybershake; at 12000 s ligo; etc.
	for _, f := range flows {
		wantApp := Cybershake
		switch {
		case f.IssuedAt < 10000:
			wantApp = Cybershake
		case f.IssuedAt < 15000:
			wantApp = Ligo
		case f.IssuedAt < 35000:
			wantApp = Montage
		}
		if got := f.Name[:len(wantApp.String())]; got != wantApp.String() {
			t.Fatalf("flow at %g is %q, want app %v", f.IssuedAt, f.Name, wantApp)
		}
	}
}

func TestRandomWorkloadMixesApps(t *testing.T) {
	db := newDB(t)
	gen := NewGenerator(db, 13)
	flows := gen.RandomWorkload(10000, 60)
	seen := map[string]bool{}
	for _, f := range flows {
		for _, a := range Apps {
			if len(f.Name) > len(a.String()) && f.Name[:len(a.String())] == a.String() {
				seen[a.String()] = true
			}
		}
	}
	if len(seen) != 3 {
		t.Errorf("apps seen = %v, want all three", seen)
	}
}

func TestMeasuredStats(t *testing.T) {
	db := newDB(t)
	gen := NewGenerator(db, 17)
	flows := []*dataflow.Flow{gen.Flow(Ligo, 0, 0), gen.Flow(Ligo, 1, 0)}
	st := MeasuredStats(db, flows)
	if st.Ops < 90 || st.Ops > 110 {
		t.Errorf("Ops = %d, want ~100", st.Ops)
	}
	if st.Files != 53 {
		t.Errorf("Files = %d, want 53 (ligo)", st.Files)
	}
	if st.MeanT <= 0 || st.StdevT <= 0 || st.MaxT < st.MinT {
		t.Errorf("degenerate stats: %+v", st)
	}
	if st.MeanMB <= 0 {
		t.Errorf("MeanMB = %g, want > 0", st.MeanMB)
	}
}
