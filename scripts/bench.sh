#!/bin/sh
# bench.sh — run the Benchmark* suite with -benchmem and emit a JSON
# summary (name, ns/op, allocs/op) to track the performance trajectory
# across PRs.
#
# Usage:
#   scripts/bench.sh [output.json]          full run (default BENCH_PR7.json)
#   scripts/bench.sh -short [output.json]   single-iteration smoke run for CI
set -eu

cd "$(dirname "$0")/.."

MODE=full
if [ "${1:-}" = "-short" ]; then
	MODE=short
	shift
fi
OUT="${1:-BENCH_PR7.json}"

if [ "$MODE" = "short" ]; then
	# One iteration per benchmark: proves they all still run without
	# spending CI minutes on statistically meaningful timings.
	BENCHTIME="-benchtime=1x"
else
	BENCHTIME=""
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# shellcheck disable=SC2086  # BENCHTIME is intentionally word-split
go test -bench=. -benchmem $BENCHTIME -run='^$' ./... > "$RAW" 2>&1 || {
	status=$?
	cat "$RAW"
	echo "benchmarks failed" >&2
	exit $status
}
cat "$RAW"

# Benchmark output lines look like:
#   BenchmarkName-8   123   456789 ns/op   1024 B/op   17 allocs/op
awk '
BEGIN { print "["; n = 0 }
/^Benchmark/ && /ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op")     ns = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	if (ns == "") next
	if (allocs == "") allocs = 0
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs
}
END { if (n) printf "\n"; print "]" }
' "$RAW" > "$OUT"

echo "wrote $(grep -c '"name"' "$OUT") benchmark results to $OUT"
