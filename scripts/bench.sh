#!/bin/sh
# bench.sh — run the Benchmark* suite with -benchmem and emit a JSON
# summary (name, ns/op, allocs/op) to track the performance trajectory
# across PRs.
#
# Full runs repeat every benchmark with -count=3 and keep the minimum
# ns/op and allocs/op per benchmark: the minimum is the least-noisy
# estimator of the code's intrinsic cost on a shared machine, so PR-to-PR
# comparisons (scripts/bench_compare.sh) don't chase scheduler jitter.
#
# Usage:
#   scripts/bench.sh [output.json]          full run (default BENCH_PR9.json)
#   scripts/bench.sh -short [output.json]   single-iteration smoke run for CI
set -eu

cd "$(dirname "$0")/.."

MODE=full
if [ "${1:-}" = "-short" ]; then
	MODE=short
	shift
fi
OUT="${1:-BENCH_PR9.json}"

if [ "$MODE" = "short" ]; then
	# One iteration per benchmark: proves they all still run without
	# spending CI minutes on statistically meaningful timings.
	BENCHFLAGS="-benchtime=1x"
else
	BENCHFLAGS="-count=3"
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# shellcheck disable=SC2086  # BENCHFLAGS is intentionally word-split
go test -bench=. -benchmem $BENCHFLAGS -run='^$' ./... > "$RAW" 2>&1 || {
	status=$?
	cat "$RAW"
	echo "benchmarks failed" >&2
	exit $status
}
cat "$RAW"

# Benchmark output lines look like:
#   BenchmarkName-8   123   456789 ns/op   1024 B/op   17 allocs/op
# With -count=N each benchmark appears N times; keep the minimum of each
# metric per benchmark, in first-appearance order.
awk '
/^Benchmark/ && /ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op")     ns = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	if (ns == "") next
	if (allocs == "") allocs = 0
	if (!(name in min_ns)) {
		order[++n] = name
		min_ns[name] = ns + 0
		min_al[name] = allocs + 0
	} else {
		if (ns + 0 < min_ns[name]) min_ns[name] = ns + 0
		if (allocs + 0 < min_al[name]) min_al[name] = allocs + 0
	}
}
END {
	print "["
	for (i = 1; i <= n; i++) {
		name = order[i]
		printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}%s\n",
			name, min_ns[name], min_al[name], (i < n) ? "," : ""
	}
	print "]"
}
' "$RAW" > "$OUT"

echo "wrote $(grep -c '"name"' "$OUT") benchmark results to $OUT"
