#!/bin/sh
# bench_compare.sh — diff two bench.sh JSON summaries and fail loudly on
# regression. Compares ns/op and allocs/op for every benchmark present in
# both files and exits non-zero (with a table) if any metric regressed by
# more than the threshold (default 15%).
#
# Sub-100ns benchmarks are exempt from the relative ns/op gate unless the
# absolute delta also exceeds 100ns: at that scale a 15% threshold is a
# few nanoseconds, within what code layout and branch-predictor drift move
# between unrelated builds, so a relative-only gate flags noise rather
# than regressions. Their allocs/op gate still applies in full.
#
# Usage:
#   scripts/bench_compare.sh BASELINE.json CURRENT.json [threshold-pct]
set -eu

cd "$(dirname "$0")/.."

BASE="${1:?usage: bench_compare.sh BASELINE.json CURRENT.json [threshold-pct]}"
CURR="${2:?usage: bench_compare.sh BASELINE.json CURRENT.json [threshold-pct]}"
THRESH="${3:-15}"

for f in "$BASE" "$CURR"; do
	if [ ! -f "$f" ]; then
		echo "bench_compare: $f not found (run scripts/bench.sh first)" >&2
		exit 2
	fi
done

# bench.sh emits one {"name": ..., "ns_per_op": ..., "allocs_per_op": ...}
# object per line, so line-oriented awk is enough — no jq dependency.
awk -v thresh="$THRESH" -v basefile="$BASE" -v currfile="$CURR" '
function parse(line, arr) {
	if (match(line, /"name": *"[^"]*"/) == 0) return 0
	arr["name"] = substr(line, RSTART, RLENGTH)
	sub(/"name": *"/, "", arr["name"]); sub(/"$/, "", arr["name"])
	if (match(line, /"ns_per_op": *[0-9.eE+-]+/) == 0) return 0
	arr["ns"] = substr(line, RSTART, RLENGTH); sub(/.*: */, "", arr["ns"])
	if (match(line, /"allocs_per_op": *[0-9.eE+-]+/) == 0) return 0
	arr["allocs"] = substr(line, RSTART, RLENGTH); sub(/.*: */, "", arr["allocs"])
	return 1
}
BEGIN {
	while ((getline line < basefile) > 0)
		if (parse(line, b)) { base_ns[b["name"]] = b["ns"]; base_al[b["name"]] = b["allocs"] }
	close(basefile)
	while ((getline line < currfile) > 0)
		if (parse(line, c)) { curr_ns[c["name"]] = c["ns"]; curr_al[c["name"]] = c["allocs"]; order[++n] = c["name"] }
	close(currfile)

	printf "%-40s %15s %15s %9s %12s %12s %9s\n", "benchmark", "base ns/op", "curr ns/op", "Δns%", "base allocs", "curr allocs", "Δallocs%"
	bad = 0
	for (i = 1; i <= n; i++) {
		name = order[i]
		if (!(name in base_ns)) continue
		dns = 0; dal = 0
		if (base_ns[name] + 0 > 0) dns = (curr_ns[name] - base_ns[name]) / base_ns[name] * 100
		if (base_al[name] + 0 > 0) dal = (curr_al[name] - base_al[name]) / base_al[name] * 100
		flag = ""
		ns_bad = dns > thresh && (base_ns[name] + 0 >= 100 || curr_ns[name] - base_ns[name] > 100)
		if (ns_bad || dal > thresh) { flag = "  << REGRESSION"; bad++ }
		printf "%-40s %15.0f %15.0f %8.1f%% %12.0f %12.0f %8.1f%%%s\n",
			name, base_ns[name], curr_ns[name], dns, base_al[name], curr_al[name], dal, flag
	}
	if (bad) {
		printf "\n%d benchmark(s) regressed more than %s%% vs %s\n", bad, thresh, basefile
		exit 1
	}
	printf "\nno regression beyond %s%% vs %s\n", thresh, basefile
}
' </dev/null
