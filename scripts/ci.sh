#!/bin/sh
# ci.sh — the checks CI runs, runnable locally: gofmt, vet, build, race tests.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "CI checks passed."
