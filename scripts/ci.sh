#!/bin/sh
# ci.sh — the checks CI runs, runnable locally: gofmt, vet, build, race tests.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

# The scheduler's worker-pool expansion and the experiment fan-out are
# concurrent; the race detector runs as its own pass, in short mode to
# keep the instrumented run fast.
echo "== go test -race -short =="
go test -race -short ./...

echo "CI checks passed."
