#!/bin/sh
# ci.sh — the checks CI runs, runnable locally: gofmt, vet, build, tests
# with a coverage gate, race tests.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test (with coverage) =="
go test -coverprofile=coverage.out ./...
total=$(go tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')
baseline=$(cat scripts/coverage_baseline.txt)
echo "total coverage: ${total}% (baseline ${baseline}%)"
if ! awk -v t="$total" -v b="$baseline" 'BEGIN { exit (t+0 >= b+0) ? 0 : 1 }'; then
	echo "coverage ${total}% fell below the ${baseline}% baseline (scripts/coverage_baseline.txt)"
	exit 1
fi

# The scheduler's worker-pool expansion and the experiment fan-out are
# concurrent; the race detector runs as its own pass, in short mode to
# keep the instrumented run fast.
echo "== go test -race -short =="
go test -race -short ./...

# Warm-start soundness gate: the golden cold-vs-warm equivalence suite
# (sched frontier memo, service-level metrics with faults, parallelism
# 1/2/8) must pass under the race detector before anything ships.
echo "== cold-vs-warm equivalence (race) =="
go test -race -short -run 'TestWarm|TestServiceWarm|FuzzWarmFrontier' \
	./internal/sched ./internal/core ./internal/check

# Smoke-run the sim with the flight recorder on: the run must succeed,
# explain itself, and write a parseable provenance log (the JSONL and
# Chrome trace land in artifacts/ for CI upload).
echo "== provenance smoke run =="
mkdir -p artifacts
go run ./cmd/idxflow-sim -horizon 120 -events artifacts/events.jsonl \
	-trace artifacts/trace.json -explain >/dev/null
head -c 200 artifacts/events.jsonl | grep -q '"format":"idxflow-events/1"' || {
	echo "events.jsonl missing the idxflow-events/1 header"
	exit 1
}

# End-to-end QaaS smoke: race-built server, concurrent multi-tenant burst,
# clean accounting audit required.
echo "== loadgen smoke =="
scripts/loadgen_smoke.sh

# Vectorized-engine smoke: the 100x-scale Table 6 harness at a reduced
# -scale (0.001*100 = scale 0.1, ~600k rows). The run fails if any
# scalar/vectorized/index cross-check or the equivalence auditor fails.
echo "== table6x100 smoke (reduced scale) =="
go run ./cmd/idxflow-experiments -exp table6x100 -scale 0.001 >/dev/null

echo "CI checks passed."
