#!/bin/sh
# ci.sh — the checks CI runs, runnable locally: gofmt, vet, build, tests
# with a coverage gate, race tests.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test (with coverage) =="
go test -coverprofile=coverage.out ./...
total=$(go tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')
baseline=$(cat scripts/coverage_baseline.txt)
echo "total coverage: ${total}% (baseline ${baseline}%)"
if ! awk -v t="$total" -v b="$baseline" 'BEGIN { exit (t+0 >= b+0) ? 0 : 1 }'; then
	echo "coverage ${total}% fell below the ${baseline}% baseline (scripts/coverage_baseline.txt)"
	exit 1
fi

# The scheduler's worker-pool expansion and the experiment fan-out are
# concurrent; the race detector runs as its own pass, in short mode to
# keep the instrumented run fast.
echo "== go test -race -short =="
go test -race -short ./...

echo "CI checks passed."
