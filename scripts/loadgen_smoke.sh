#!/bin/sh
# loadgen_smoke.sh — end-to-end smoke of the QaaS admission pipeline: build
# idxflow-server with the race detector, drive a short concurrent burst
# through idxflow-loadgen, and require a clean accounting audit with a
# non-zero admitted count.
#
# Usage:
#   scripts/loadgen_smoke.sh [submissions] [tenants]   (default 160 across 4)
set -eu

cd "$(dirname "$0")/.."

N="${1:-160}"
TENANTS="${2:-4}"
ADDR="127.0.0.1:18091"
BIN=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

echo "== build (server with -race) =="
go build -race -o "$BIN/idxflow-server" ./cmd/idxflow-server
go build -o "$BIN/idxflow-loadgen" ./cmd/idxflow-loadgen

echo "== start server =="
"$BIN/idxflow-server" -addr "$ADDR" -qaas -workers 4 -queue 64 \
	-tenant-inflight 16 -fleet 16 > "$BIN/server.log" 2>&1 &
SERVER_PID=$!

# Wait for the listener (the race-instrumented binary starts slowly).
i=0
until "$BIN/idxflow-loadgen" -addr "http://$ADDR" -tenants 1 -n 1 -conns 1 \
	>/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "server never came up:" >&2
		cat "$BIN/server.log" >&2
		exit 1
	fi
	sleep 0.2
done

echo "== loadgen burst ($N submissions, $TENANTS tenants) =="
mkdir -p artifacts
# -audit fails the run on any accounting violation; -min-admitted requires
# every submission (closed loop retries 429s) to have been admitted.
"$BIN/idxflow-loadgen" -addr "http://$ADDR" -tenants "$TENANTS" -n "$N" \
	-conns 16 -audit -min-admitted "$N" -json artifacts/loadgen_smoke.json

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || {
	echo "server exited non-zero:" >&2
	cat "$BIN/server.log" >&2
	exit 1
}
# The race detector reports to stderr and (with default halt_on_error=0)
# exits 66 only at the end; grep so a report can never slip through.
if grep -q "WARNING: DATA RACE" "$BIN/server.log"; then
	echo "data race detected:" >&2
	cat "$BIN/server.log" >&2
	exit 1
fi

echo "loadgen smoke passed."
